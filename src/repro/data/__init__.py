"""Datasets and loaders.

Every dataset in the paper (ImageNet source, CIFAR-10/100, the VTAB
suite, PASCAL VOC segmentation, corruption and OoD test sets) is
replaced by a procedurally generated equivalent:

* :mod:`repro.data.synthetic` defines a family of class-conditional
  image generators that share low-level statistics (oriented textures,
  blobs, colour palettes) so that features learned on the *source*
  generator transfer to *downstream* generators derived from it.
* :mod:`repro.data.tasks` instantiates the source task and the named
  downstream tasks, each with a controlled **domain shift** relative to
  the source — the axis that Fig. 9 / Tab. II of the paper sweep via
  FID.
* :mod:`repro.data.segmentation`, :mod:`repro.data.corruptions`, and
  :mod:`repro.data.ood` provide the dense-prediction task, common
  corruptions, and out-of-distribution inputs used by the remaining
  experiments.
"""

from repro.data.dataset import ArrayDataset, DataLoader
from repro.data.synthetic import SyntheticImageGenerator, GeneratorConfig
from repro.data.tasks import (
    TaskSpec,
    source_task,
    downstream_task,
    vtab_suite,
    available_downstream_tasks,
)
from repro.data.segmentation import SegmentationTask, segmentation_task
from repro.data.corruptions import corrupt, available_corruptions
from repro.data.ood import ood_dataset

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "SyntheticImageGenerator",
    "GeneratorConfig",
    "TaskSpec",
    "source_task",
    "downstream_task",
    "vtab_suite",
    "available_downstream_tasks",
    "SegmentationTask",
    "segmentation_task",
    "corrupt",
    "available_corruptions",
    "ood_dataset",
]
