"""Out-of-distribution inputs for OoD-detection evaluation (Fig. 8 ROC-AUC).

OoD samples are drawn from a generator with a *different* palette seed
(an unrelated family of textures and colours) plus a pure-noise
component, so they are off the manifold of every in-distribution task
while having the same shape and value range.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.synthetic import GeneratorConfig, SyntheticImageGenerator


def ood_dataset(
    num_samples: int = 300,
    image_size: int = 16,
    seed: int = 999,
    noise_fraction: float = 0.5,
) -> ArrayDataset:
    """Build an OoD dataset of ``num_samples`` unlabeled images.

    Half the samples (by default) come from an unrelated synthetic
    generator family and half are structured uniform noise; labels are
    all ``-1`` as they are never used for classification.
    """
    if not 0.0 <= noise_fraction <= 1.0:
        raise ValueError("noise_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    config = GeneratorConfig(
        num_classes=8,
        image_size=image_size,
        palette_seed=987654,  # unrelated palette family
        class_seed=77,
        domain_shift=0.0,
        noise_std=0.1,
    )
    generator = SyntheticImageGenerator(config)

    num_noise = int(round(num_samples * noise_fraction))
    num_generated = num_samples - num_noise
    images_generated, _ = generator.sample(num_generated, rng) if num_generated else (
        np.empty((0, 3, image_size, image_size)),
        None,
    )

    # Structured noise: low-frequency random fields, clipped to [0, 1].
    noise = rng.normal(0.5, 0.35, size=(num_noise, 3, image_size, image_size))
    noise = np.clip(noise, 0.0, 1.0)

    images = np.concatenate([images_generated, noise], axis=0)
    labels = -np.ones(len(images), dtype=np.int64)
    order = rng.permutation(len(images))
    return ArrayDataset(images[order], labels[order])
