"""In-memory datasets and mini-batch loading."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.tensor import default_dtype


class ArrayDataset:
    """A dataset held fully in memory as parallel numpy arrays.

    Parameters
    ----------
    images:
        Float array, NCHW layout for image tasks.
    labels:
        Integer class labels ``(N,)`` or dense label maps ``(N, H, W)``.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        # Store images in the engine's compute dtype so every batch enters
        # the forward pass without a per-batch cast/copy.
        images = np.asarray(images, dtype=default_dtype())
        labels = np.asarray(labels)
        if len(images) != len(labels):
            raise ValueError(
                f"images and labels disagree on length: {len(images)} vs {len(labels)}"
            )
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.images[index], self.labels[index]

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices)
        return ArrayDataset(self.images[indices], self.labels[indices])

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0


class DataLoader:
    """Iterates a dataset in mini-batches, optionally reshuffling each epoch."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        rng: Optional[np.random.Generator] = None,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = rng if rng is not None else np.random.default_rng()

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        total = len(self.dataset)
        if not self.shuffle:
            # Sequential iteration needs no index permutation at all:
            # plain slices yield zero-copy views of the dataset arrays.
            # The views are handed out read-only so a consumer mutating
            # its batch in place cannot silently corrupt the dataset
            # (the shuffled path's fancy indexing always copies).
            for start in range(0, total, self.batch_size):
                stop = min(start + self.batch_size, total)
                if self.drop_last and stop - start < self.batch_size:
                    break
                images = self.dataset.images[start:stop]
                labels = self.dataset.labels[start:stop]
                images.flags.writeable = False
                labels.flags.writeable = False
                yield images, labels
            return
        order = np.arange(total)
        self._rng.shuffle(order)
        for start in range(0, total, self.batch_size):
            batch = order[start : start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                break
            yield self.dataset.images[batch], self.dataset.labels[batch]
