"""Synthetic dense-prediction (segmentation) task — the PASCAL VOC stand-in.

Images contain a textured background plus a few coloured geometric
objects (discs and rectangles); the label map marks each pixel with the
class of the object covering it (0 = background).  The background and
object textures are drawn from the same palette family as the
classification tasks, so a backbone pretrained on the source task
provides useful features here — which is exactly the transfer setting
of Fig. 7 in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.data.dataset import ArrayDataset


@dataclass
class SegmentationTask:
    """Train/test splits of the synthetic segmentation task."""

    name: str
    num_classes: int
    train: ArrayDataset
    test: ArrayDataset
    image_size: int


def _render_scene(
    rng: np.random.Generator, image_size: int, num_classes: int, max_objects: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Render one image and its per-pixel label map."""
    ys, xs = np.meshgrid(np.arange(image_size), np.arange(image_size), indexing="ij")
    ys_norm = ys / image_size
    xs_norm = xs / image_size

    # Textured background (class 0).
    orientation = rng.uniform(0, np.pi)
    frequency = rng.uniform(1.0, 3.0)
    background = 0.35 + 0.15 * np.sin(
        2 * np.pi * frequency * (np.cos(orientation) * xs_norm + np.sin(orientation) * ys_norm)
    )
    base_colour = rng.uniform(0.25, 0.55, size=3).reshape(3, 1, 1)
    image = base_colour * background[None, :, :]
    labels = np.zeros((image_size, image_size), dtype=np.int64)

    num_objects = int(rng.integers(1, max_objects + 1))
    for _ in range(num_objects):
        object_class = int(rng.integers(1, num_classes))
        colour = (0.3 + 0.6 * _class_colour(object_class, num_classes)).reshape(3, 1, 1)
        if rng.random() < 0.5:
            # Disc.
            centre_y = rng.uniform(0.2, 0.8) * image_size
            centre_x = rng.uniform(0.2, 0.8) * image_size
            radius = rng.uniform(0.12, 0.28) * image_size
            mask = (ys - centre_y) ** 2 + (xs - centre_x) ** 2 <= radius**2
        else:
            # Axis-aligned rectangle.
            height = int(rng.uniform(0.2, 0.45) * image_size)
            width = int(rng.uniform(0.2, 0.45) * image_size)
            top = int(rng.integers(0, image_size - height))
            left = int(rng.integers(0, image_size - width))
            mask = np.zeros((image_size, image_size), dtype=bool)
            mask[top : top + height, left : left + width] = True
        image = np.where(mask[None, :, :], colour * (0.8 + 0.2 * background[None, :, :]), image)
        labels[mask] = object_class

    image = image + rng.normal(0.0, 0.05, size=image.shape)
    return np.clip(image, 0.0, 1.0), labels


def _class_colour(object_class: int, num_classes: int) -> np.ndarray:
    """A fixed, well-separated colour per object class."""
    angle = 2 * np.pi * object_class / max(num_classes, 2)
    return 0.5 + 0.5 * np.array([np.cos(angle), np.sin(angle), np.cos(2 * angle)])


def segmentation_task(
    num_classes: int = 4,
    train_size: int = 200,
    test_size: int = 80,
    image_size: int = 16,
    max_objects: int = 3,
    seed: int = 500,
) -> SegmentationTask:
    """Build the synthetic segmentation task (``num_classes`` includes background)."""
    if num_classes < 2:
        raise ValueError("segmentation needs at least a background and one object class")

    def build_split(size: int, split_seed: int) -> ArrayDataset:
        rng = np.random.default_rng(split_seed)
        images = np.empty((size, 3, image_size, image_size))
        labels = np.empty((size, image_size, image_size), dtype=np.int64)
        for index in range(size):
            images[index], labels[index] = _render_scene(rng, image_size, num_classes, max_objects)
        return ArrayDataset(images, labels)

    return SegmentationTask(
        name="synthetic-voc",
        num_classes=num_classes,
        train=build_split(train_size, seed),
        test=build_split(test_size, seed + 1),
        image_size=image_size,
    )
