"""Procedural class-conditional image generators.

The goal is a *family* of image-classification tasks whose members share
low-level statistics (oriented textures, blob layouts, colour palettes)
but differ in class semantics and in a controllable **domain shift**
relative to a designated *source* generator.  This mirrors the
ImageNet-to-downstream relationship the paper depends on:

* pretraining a convolutional network on the source generator learns
  texture/edge/colour detectors that are useful on downstream
  generators (transfer learning is beneficial);
* the ``domain_shift`` knob moves a downstream generator's colour
  palette, texture frequencies, contrast, and clutter away from the
  source, raising its FID against the source in a monotone way (the
  axis swept in Fig. 9 / Tab. II).

Each class ``c`` of a generator is defined by a prototype composed of
``num_waves`` oriented sinusoidal gratings and ``num_blobs`` Gaussian
blobs with a class colour.  A sample of class ``c`` is the prototype
with per-instance spatial jitter, amplitude jitter, additive noise and
optional horizontal flips, clipped to ``[0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset


@dataclass(frozen=True)
class GeneratorConfig:
    """Hyper-parameters of a synthetic class-conditional image generator.

    Attributes
    ----------
    num_classes:
        Number of classes generated.
    image_size:
        Spatial resolution (images are square, 3 channels).
    num_waves, num_blobs:
        Number of sinusoidal gratings / Gaussian blobs per class prototype.
    noise_std:
        Standard deviation of per-pixel additive Gaussian noise.
    jitter:
        Maximum spatial shift (pixels) applied per sample.
    domain_shift:
        0 for the source distribution; larger values shift colour
        palette, texture frequency and contrast away from the source.
    palette_seed:
        Seed of the colour/texture palette.  Generators sharing a
        palette seed draw prototypes from the same family of low-level
        statistics, which is what makes transfer from the source
        generator effective.
    class_seed:
        Seed of the class-semantics draw; different downstream tasks use
        different class seeds so their label spaces are unrelated.
    """

    num_classes: int = 10
    image_size: int = 16
    num_waves: int = 3
    num_blobs: int = 2
    noise_std: float = 0.08
    jitter: int = 2
    domain_shift: float = 0.0
    palette_seed: int = 1234
    class_seed: int = 0

    def shifted(self, domain_shift: float, class_seed: Optional[int] = None) -> "GeneratorConfig":
        """Return a copy with a different domain shift (and optionally class seed)."""
        return replace(
            self,
            domain_shift=float(domain_shift),
            class_seed=self.class_seed if class_seed is None else int(class_seed),
        )


class SyntheticImageGenerator:
    """Generates images and labels according to a :class:`GeneratorConfig`."""

    def __init__(self, config: GeneratorConfig) -> None:
        self.config = config
        self._prototypes = self._build_prototypes()

    # ------------------------------------------------------------------
    # Prototype construction
    # ------------------------------------------------------------------
    def _build_prototypes(self) -> np.ndarray:
        """Build one ``(3, H, W)`` prototype per class."""
        config = self.config
        size = config.image_size
        palette_rng = np.random.default_rng(config.palette_seed)
        class_rng = np.random.default_rng(
            np.random.SeedSequence([config.palette_seed, config.class_seed + 7919])
        )
        shift = float(config.domain_shift)

        # A shared palette of base colours and texture orientations; the
        # domain shift rotates the palette hue and rescales frequencies.
        palette = palette_rng.uniform(0.2, 0.8, size=(max(config.num_classes, 16), 3))
        orientations = palette_rng.uniform(0.0, np.pi, size=64)
        base_frequencies = palette_rng.uniform(1.0, 3.5, size=64)

        ys, xs = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
        ys = ys / size
        xs = xs / size

        prototypes = np.zeros((config.num_classes, 3, size, size))
        for class_index in range(config.num_classes):
            colour = palette[class_index % len(palette)].copy()
            # Domain shift: rotate the colour palette and compress its range.
            colour = np.clip(colour + shift * class_rng.uniform(-0.35, 0.35, size=3), 0.05, 0.95)
            canvas = np.zeros((3, size, size))
            canvas += colour.reshape(3, 1, 1) * 0.5

            for _ in range(config.num_waves):
                orientation = orientations[class_rng.integers(0, len(orientations))]
                orientation = orientation + shift * class_rng.uniform(-0.6, 0.6)
                frequency = base_frequencies[class_rng.integers(0, len(base_frequencies))]
                frequency = frequency * (1.0 + 0.8 * shift * class_rng.uniform(-1.0, 1.0))
                phase = class_rng.uniform(0, 2 * np.pi)
                amplitude = class_rng.uniform(0.1, 0.25)
                wave = np.sin(
                    2 * np.pi * frequency * (np.cos(orientation) * xs + np.sin(orientation) * ys)
                    + phase
                )
                channel_weights = class_rng.uniform(0.3, 1.0, size=3).reshape(3, 1, 1)
                canvas += amplitude * channel_weights * wave

            for _ in range(config.num_blobs):
                centre_y = class_rng.uniform(0.2, 0.8)
                centre_x = class_rng.uniform(0.2, 0.8)
                sigma = class_rng.uniform(0.08, 0.2) * (1.0 + 0.5 * shift)
                blob = np.exp(-(((ys - centre_y) ** 2 + (xs - centre_x) ** 2) / (2 * sigma**2)))
                blob_colour = class_rng.uniform(0.2, 1.0, size=3).reshape(3, 1, 1)
                canvas += 0.35 * blob_colour * blob

            # Domain shift also reduces contrast and adds a fixed clutter grating.
            if shift > 0:
                clutter = np.sin(2 * np.pi * (2.0 + 4.0 * shift) * (xs + ys))
                canvas = (1.0 - 0.3 * shift) * canvas + 0.15 * shift * clutter
            prototypes[class_index] = canvas
        return np.clip(prototypes, 0.0, 1.0)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(
        self, num_samples: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``num_samples`` (image, label) pairs with balanced classes."""
        config = self.config
        labels = rng.integers(0, config.num_classes, size=num_samples)
        images = np.empty((num_samples, 3, config.image_size, config.image_size))
        for index, label in enumerate(labels):
            images[index] = self._render(int(label), rng)
        return images, labels.astype(np.int64)

    def dataset(self, num_samples: int, seed: int) -> ArrayDataset:
        """Convenience wrapper returning an :class:`ArrayDataset`."""
        rng = np.random.default_rng(seed)
        images, labels = self.sample(num_samples, rng)
        return ArrayDataset(images, labels)

    def _render(self, label: int, rng: np.random.Generator) -> np.ndarray:
        config = self.config
        prototype = self._prototypes[label]
        image = prototype.copy()

        # Instance-level spatial jitter via circular shifts.
        if config.jitter > 0:
            shift_y = int(rng.integers(-config.jitter, config.jitter + 1))
            shift_x = int(rng.integers(-config.jitter, config.jitter + 1))
            image = np.roll(image, (shift_y, shift_x), axis=(1, 2))
        if rng.random() < 0.5:
            image = image[:, :, ::-1]

        # Amplitude / brightness jitter then additive noise.
        gain = rng.uniform(0.85, 1.15)
        offset = rng.uniform(-0.05, 0.05)
        image = image * gain + offset
        image = image + rng.normal(0.0, config.noise_std, size=image.shape)
        return np.clip(image, 0.0, 1.0)

    @property
    def prototypes(self) -> np.ndarray:
        """The noiseless class prototypes ``(num_classes, 3, H, W)``."""
        return self._prototypes.copy()
