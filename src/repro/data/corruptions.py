"""Common-corruption transforms (the ImageNet-C stand-in).

The corruption accuracy ("Crpt-Acc") reported in Fig. 8 of the paper is
measured on inputs passed through these transforms at a given severity.
Severities are integers 1-5, higher meaning stronger corruption, as in
the ImageNet-C protocol.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np
from scipy import ndimage

from repro.tensor import default_dtype


def _severity_scale(severity: int, values: List[float]) -> float:
    if not 1 <= severity <= 5:
        raise ValueError(f"severity must be in 1..5, got {severity}")
    return values[severity - 1]


def gaussian_noise(images: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    """Additive white Gaussian noise."""
    std = _severity_scale(severity, [0.04, 0.08, 0.12, 0.18, 0.25])
    return np.clip(images + rng.normal(0.0, std, size=images.shape), 0.0, 1.0)


def gaussian_blur(images: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    """Gaussian blur applied per channel."""
    sigma = _severity_scale(severity, [0.4, 0.6, 0.8, 1.1, 1.5])
    blurred = ndimage.gaussian_filter(images, sigma=(0, 0, sigma, sigma))
    return np.clip(blurred, 0.0, 1.0)


def contrast(images: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    """Contrast reduction towards the per-image mean."""
    factor = _severity_scale(severity, [0.75, 0.6, 0.45, 0.3, 0.2])
    means = images.mean(axis=(2, 3), keepdims=True)
    return np.clip((images - means) * factor + means, 0.0, 1.0)


def pixelate(images: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    """Downsample then nearest-neighbour upsample."""
    factor = int(_severity_scale(severity, [1, 2, 2, 4, 4]))
    if factor <= 1:
        return images.copy()
    height = images.shape[2]
    down = images[:, :, ::factor, ::factor]
    up = down.repeat(factor, axis=2).repeat(factor, axis=3)
    return np.clip(up[:, :, :height, : images.shape[3]], 0.0, 1.0)


def brightness(images: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    """Additive brightness shift."""
    shift = _severity_scale(severity, [0.08, 0.14, 0.2, 0.28, 0.35])
    return np.clip(images + shift, 0.0, 1.0)


_CORRUPTIONS: Dict[str, Callable[[np.ndarray, int, np.random.Generator], np.ndarray]] = {
    "gaussian_noise": gaussian_noise,
    "gaussian_blur": gaussian_blur,
    "contrast": contrast,
    "pixelate": pixelate,
    "brightness": brightness,
}


def available_corruptions() -> List[str]:
    """Names of all implemented corruptions."""
    return sorted(_CORRUPTIONS)


def corrupt(
    images: np.ndarray,
    corruption: str,
    severity: int = 3,
    seed: int = 0,
) -> np.ndarray:
    """Apply a named corruption at the given severity to NCHW images in [0, 1]."""
    if corruption not in _CORRUPTIONS:
        raise KeyError(f"unknown corruption {corruption!r}; available: {available_corruptions()}")
    rng = np.random.default_rng(seed)
    return _CORRUPTIONS[corruption](np.asarray(images, dtype=default_dtype()), severity, rng)
