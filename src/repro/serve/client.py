"""Serving clients: in-process (benchmarks, tests) and HTTP (stdlib).

:class:`InProcessClient` talks straight to a :class:`ServingEngine`
without any transport — it is what the load-generator benchmark drives
from many threads, so the measured speedup isolates the batching
scheduler from HTTP overhead.  :class:`HTTPClient` speaks the JSON
protocol of :mod:`repro.serve.http` over ``urllib`` so smoke tests and
scripts need no third-party HTTP library.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Optional

import numpy as np

from repro.serve.engine import ServingEngine

__all__ = ["HTTPClient", "InProcessClient", "ServingError"]


class ServingError(RuntimeError):
    """A server-side error reported to a client (HTTP 4xx/5xx payload)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class InProcessClient:
    """Blocking client bound to one engine in the same process.

    Safe to share across threads: each ``predict`` submits to the
    engine's micro-batcher and blocks the calling thread only.
    """

    def __init__(self, engine: ServingEngine) -> None:
        self.engine = engine

    def predict(self, inputs) -> np.ndarray:
        return self.engine.predict(inputs)

    def stats(self) -> Dict[str, object]:
        return self.engine.stats()


class HTTPClient:
    """Minimal stdlib client for the ``repro.serve`` HTTP frontend."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, path: str, payload: Optional[dict] = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read().decode("utf-8")).get("error", str(error))
            except (ValueError, OSError):
                message = str(error)
            raise ServingError(error.code, message) from error

    def healthz(self) -> dict:
        return self._request("/healthz")

    def models(self) -> dict:
        return self._request("/models")

    def predict(self, inputs, model: Optional[str] = None) -> np.ndarray:
        """POST ``/predict`` and return logits in the server's dtype.

        The response carries the artifact's compute dtype, so casting
        the JSON floats back yields arrays byte-identical to what the
        engine computed.
        """
        payload: dict = {"inputs": np.asarray(inputs).tolist()}
        if model is not None:
            payload["model"] = model
        response = self._request("/predict", payload)
        logits = np.asarray(response["logits"], dtype=response["dtype"])
        # ``tolist`` flattens a zero-row result to ``[]``; the declared
        # shape restores the class dimension of the empty-input contract.
        return logits.reshape(response["shape"])
