"""Serving clients: in-process (benchmarks, tests) and HTTP (stdlib).

:class:`InProcessClient` talks straight to a :class:`ServingEngine`
without any transport — it is what the load-generator benchmark drives
from many threads, so the measured speedup isolates the batching
scheduler from HTTP overhead.  :class:`HTTPClient` speaks the JSON
protocol of :mod:`repro.serve.http` over ``urllib`` so smoke tests and
scripts need no third-party HTTP library.

The HTTP client retries what is worth retrying: connection errors (the
server is restarting, a fleet shard pool is rebooting) and ``503``
overload rejections, with bounded attempts, exponential backoff, full
jitter, and the server's ``Retry-After`` hint as a floor.  Anything
else — bad input, unknown model, a genuine server bug — surfaces
immediately as a :class:`ServingError` with ``retryable=False``.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, Optional

import numpy as np

from repro.serve.engine import ServingEngine

__all__ = ["HTTPClient", "InProcessClient", "RetryPolicy", "ServingError"]

#: HTTP statuses worth retrying: pure overload/unavailability signals.
RETRYABLE_STATUSES = frozenset({503})


class ServingError(RuntimeError):
    """A server-side error reported to a client (HTTP 4xx/5xx payload).

    ``retryable`` says whether another attempt could succeed (overload,
    a restarting backend) — :class:`HTTPClient` consumes it in its
    retry loop and callers can too.  ``retry_after`` carries the
    server's ``Retry-After`` hint in seconds when one was sent.
    """

    def __init__(
        self,
        status: int,
        message: str,
        retryable: bool = False,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retryable = retryable
        self.retry_after = retry_after


class RetryPolicy:
    """Bounded exponential backoff with full jitter.

    ``attempts`` counts total tries (1 = no retry).  The delay before
    retry ``k`` (1-based) is uniformly drawn from
    ``[0, min(backoff_max_s, backoff_s * 2**(k-1))]`` — full jitter, so
    a thundering herd of clients decorrelates — and never below the
    server's ``Retry-After`` hint when one accompanied the rejection.
    """

    def __init__(
        self,
        attempts: int = 3,
        backoff_s: float = 0.1,
        backoff_max_s: float = 2.0,
        seed: Optional[int] = None,
    ) -> None:
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        if backoff_s < 0 or backoff_max_s < 0:
            raise ValueError("backoff_s and backoff_max_s must be >= 0")
        self.attempts = attempts
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self._rng = random.Random(seed)

    def delay(self, retry_index: int, retry_after: Optional[float] = None) -> float:
        """Seconds to sleep before 1-based retry ``retry_index``."""
        ceiling = min(self.backoff_max_s, self.backoff_s * (2 ** (retry_index - 1)))
        jittered = self._rng.uniform(0.0, ceiling)
        if retry_after is not None:
            return max(jittered, retry_after)
        return jittered


class InProcessClient:
    """Blocking client bound to one engine in the same process.

    Safe to share across threads: each ``predict`` submits to the
    engine's micro-batcher and blocks the calling thread only.
    """

    def __init__(self, engine: ServingEngine) -> None:
        self.engine = engine

    def predict(self, inputs) -> np.ndarray:
        return self.engine.predict(inputs)

    def stats(self) -> Dict[str, object]:
        return self.engine.stats()


class HTTPClient:
    """Stdlib client for the ``repro.serve`` HTTP frontend with retries.

    ``retry`` configures the backoff loop (``RetryPolicy(attempts=1)``
    disables retrying entirely); ``sleep`` is injectable so tests can
    observe the chosen delays without waiting them out.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep

    def _request_once(self, path: str, payload: Optional[dict] = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = b""
            try:
                raw = error.read()
            except OSError:
                pass
            try:
                body = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                body = {}
            message = body.get("error", str(error))
            retry_after: Optional[float] = None
            header = error.headers.get("Retry-After") if error.headers is not None else None
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
            retryable = error.code in RETRYABLE_STATUSES or bool(body.get("retryable", False))
            raise ServingError(
                error.code, message, retryable=retryable, retry_after=retry_after
            ) from error

    def _request(self, path: str, payload: Optional[dict] = None) -> dict:
        """One logical request: retries connection errors and 503s."""
        for attempt in range(1, self.retry.attempts + 1):
            try:
                return self._request_once(path, payload)
            except ServingError as error:
                if not error.retryable or attempt == self.retry.attempts:
                    raise
                self._sleep(self.retry.delay(attempt, error.retry_after))
            except urllib.error.URLError as error:
                # Connection refused/reset: the server (or its shard
                # pool) is restarting.  HTTPError is a URLError
                # subclass but was already converted above.
                if attempt == self.retry.attempts:
                    raise
                self._sleep(self.retry.delay(attempt))
        raise AssertionError("unreachable: the retry loop returns or raises")

    def healthz(self) -> dict:
        return self._request("/healthz")

    def models(self) -> dict:
        return self._request("/models")

    def metrics(self) -> dict:
        """GET ``/metrics``: the ``repro-metrics/v1`` JSON snapshot."""
        return self._request("/metrics")

    def drain(self) -> dict:
        """POST ``/drain``: stop admission; in-flight work completes."""
        return self._request("/drain", {})

    def load(self, model: str) -> dict:
        """POST ``/models/{model}/load``: warm the engine(s) for ``model``."""
        return self._request(f"/models/{model}/load", {})

    def evict(self, model: str) -> dict:
        """POST ``/models/{model}/evict``: drop ``model``'s resident engine(s)."""
        return self._request(f"/models/{model}/evict", {})

    def set_rate_limit(
        self, model: str, rate_per_s: Optional[float], burst: Optional[int] = None
    ) -> dict:
        """POST ``/models/{model}/ratelimit``; ``rate_per_s=None`` clears it."""
        payload: dict = {"rate_per_s": rate_per_s}
        if burst is not None:
            payload["burst"] = burst
        return self._request(f"/models/{model}/ratelimit", payload)

    def predict(self, inputs, model: Optional[str] = None) -> np.ndarray:
        """POST ``/predict`` and return logits in the server's dtype.

        The response carries the artifact's compute dtype, so casting
        the JSON floats back yields arrays byte-identical to what the
        engine computed.
        """
        payload: dict = {"inputs": np.asarray(inputs).tolist()}
        if model is not None:
            payload["model"] = model
        response = self._request("/predict", payload)
        logits = np.asarray(response["logits"], dtype=response["dtype"])
        # ``tolist`` flattens a zero-row result to ``[]``; the declared
        # shape restores the class dimension of the empty-input contract.
        return logits.reshape(response["shape"])
