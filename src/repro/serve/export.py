"""Seal the winning grid point of a finished sweep as a model artifact.

This is the bridge from the experiment layer to the serving layer: a
finished :class:`~repro.experiments.results.ResultTable` names its best
``(model, task, sparsity)`` point, and :func:`export_best` turns that
point into a deployable ``repro-model/v1`` bundle — it re-draws the
winning ticket through the (warm) pipeline caches, trains a linear
serving head on the winning task, and calls
:func:`~repro.serve.artifact.export_artifact` with provenance tying the
artifact back to the experiment, scale, and run-store config hash.

Only experiments whose rows expose ``model``/``task``/``sparsity``
columns can be sealed (fig1/fig2-style OMP sweeps and the structured
fig3 grid); the error message says so for the rest.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.transfer import linear_evaluation
from repro.experiments.config import get_scale
from repro.experiments.context import ExperimentContext
from repro.experiments.results import ResultTable
from repro.serve.artifact import default_preprocessing, export_artifact

__all__ = ["best_point", "export_best", "sealable_columns_missing"]

#: Score columns understood by :func:`best_point`, tried in order; the
#: two-armed columns also name the ticket prior the score belongs to.
_SCORE_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("robust_accuracy", "robust"),
    ("natural_accuracy", "natural"),
    ("robust_miou", "robust"),
    ("natural_miou", "natural"),
    ("accuracy", "robust"),
    ("score", "robust"),
)

#: Row columns a sealable grid point must expose.
_REQUIRED_COLUMNS = ("model", "task", "sparsity")


def sealable_columns_missing(columns) -> list:
    """What ``columns`` lacks to be sealable (empty list = sealable).

    A sealable schema carries the ``(model, task, sparsity)`` grid
    columns plus at least one score column :func:`best_point`
    recognises.  The CLI checks an experiment's declared row schema
    with this *before* running the sweep, so ``--export-model`` on an
    unsupported experiment fails in milliseconds rather than after
    hours.
    """
    present = set(columns)
    missing = [name for name in _REQUIRED_COLUMNS if name not in present]
    if not any(name in present for name, _ in _SCORE_COLUMNS):
        missing.append(f"a score column (one of {[name for name, _ in _SCORE_COLUMNS]})")
    return missing


def best_point(table: ResultTable) -> Tuple[Dict[str, Any], str, str]:
    """The winning ``(row, score_column, prior)`` of a finished table.

    Every score column present in the table competes, so on a two-armed
    sweep the winner may be either the robust or the natural arm; the
    returned prior says which ticket to re-draw.
    """
    columns = set(table.columns())
    candidates = [(name, prior) for name, prior in _SCORE_COLUMNS if name in columns]
    if not candidates:
        raise ValueError(
            f"table {table.title!r} has no score column "
            f"(looked for {[name for name, _ in _SCORE_COLUMNS]})"
        )
    winner: Optional[Tuple[Dict[str, Any], str, str]] = None
    best_score = float("-inf")
    for row in table.rows:
        for name, prior in candidates:
            score = row.get(name)
            if score is None:
                continue
            if float(score) > best_score:
                best_score = float(score)
                winner = (row, name, prior)
    if winner is None:
        raise ValueError(f"table {table.title!r} has no scored rows to export")
    return winner


def export_best(
    table: ResultTable,
    experiment: str,
    scale,
    context: ExperimentContext,
    path: str,
    key=None,
) -> str:
    """Seal the best grid point of ``table`` to ``path``; returns the path.

    ``context`` must be the context the sweep ran with (its pretrained
    backbones are warm, so re-drawing the winning OMP ticket is cheap);
    ``key`` — the sweep's :class:`~repro.core.runstore.RunKey` — stamps
    the run-store config hash into the artifact's provenance.
    """
    scale = get_scale(scale)
    row, score_column, prior = best_point(table)
    missing = sealable_columns_missing(row)
    if missing:
        raise ValueError(
            f"experiment {experiment!r} rows carry no {missing} columns, so its "
            "winning point cannot be re-drawn as a ticket; --export-model supports "
            "sweeps over (model, task, sparsity) grids such as fig1/fig2/fig3"
        )

    pipeline = context.pipeline(str(row["model"]))
    granularity = str(row.get("granularity", "unstructured"))
    ticket = pipeline.draw_omp_ticket(prior, float(row["sparsity"]), granularity=granularity)
    task = context.task(str(row["task"]))
    # A fresh linear head over the frozen masked backbone: deterministic,
    # cheap (features are extracted once), and faithful to the linear-
    # evaluation protocol the paper scores tickets with.
    head = linear_evaluation(
        ticket, task, epochs=scale.linear_epochs, seed=scale.seed, keep_model=True
    )
    provenance: Dict[str, Any] = {
        "experiment": experiment,
        "scale": scale.name,
        "selected_by": score_column,
        "selected_score": float(row[score_column]),
        "row": {name: row.get(name) for name in row},
        "task": task.name,
        "head": "linear",
        "head_accuracy": float(head.score),
    }
    if key is not None:
        provenance["config_hash"] = key.config_hash
    return export_artifact(
        ticket,
        path,
        num_classes=task.num_classes,
        head=head.model,
        preprocessing=default_preprocessing(task.image_size),
        provenance=provenance,
        seed=scale.seed,
    )
