"""Deterministic fault injection for the serving fleet.

Every failure mode the supervisor claims to survive is selectable on
demand, so resilience is *tested*, never assumed.  A chaos spec is a
semicolon-separated list of hooks::

    kill-shard:shard=0,after=5; delay-response:shard=*,ms=25

Hooks (all counters are per worker *process*, so a restarted shard
re-arms deterministically):

``kill-shard:shard=I,after=N``
    The worker for shard ``I`` calls ``os._exit`` the moment it receives
    its ``N``-th predict request — before replying, so the request is
    in-flight when the process dies (the worst case for the supervisor).
``stall-heartbeat:shard=I,after=N``
    After answering ``N`` pings the worker stops answering them while
    still serving predictions — a live-but-wedged process the supervisor
    must treat as dead once the heartbeat deadline passes.
``delay-response:shard=I,ms=M[,after=N]``
    Every reply (from the ``N``-th predict on) sleeps ``M`` ms first —
    the knob that makes backpressure reproducible.
``corrupt-reply:shard=I,after=N``
    The ``N``-th predict reply has its payload bytes flipped, which the
    supervisor's CRC check must catch and convert into a failover.

``shard=*`` applies a hook to every shard.  Specs come from
:class:`~repro.serve.fleet.supervisor.FleetConfig` or, when unset there,
the ``REPRO_CHAOS`` environment variable — the CI chaos job selects its
faults without touching code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["CHAOS_ENV_VAR", "ChaosConfig", "ChaosHook", "parse_chaos"]

#: Environment variable the worker/supervisor read a chaos spec from.
CHAOS_ENV_VAR = "REPRO_CHAOS"

_KINDS = ("kill-shard", "stall-heartbeat", "delay-response", "corrupt-reply")


@dataclass(frozen=True)
class ChaosHook:
    """One parsed hook: what fails, on which shard, and when."""

    kind: str
    shard: Optional[int]  # None means every shard
    after: int = 1
    ms: float = 0.0

    def applies(self, shard_index: int) -> bool:
        return self.shard is None or self.shard == shard_index


@dataclass(frozen=True)
class ChaosConfig:
    """The hook set one worker consults (already filtered to its shard)."""

    hooks: Tuple[ChaosHook, ...] = ()

    def for_shard(self, shard_index: int) -> "ChaosConfig":
        return ChaosConfig(tuple(hook for hook in self.hooks if hook.applies(shard_index)))

    def first(self, kind: str) -> Optional[ChaosHook]:
        for hook in self.hooks:
            if hook.kind == kind:
                return hook
        return None

    def __bool__(self) -> bool:
        return bool(self.hooks)


def parse_chaos(spec: Optional[str]) -> ChaosConfig:
    """Parse a chaos spec string (empty/None -> no hooks)."""
    if spec is None:
        return ChaosConfig()
    hooks = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, arguments = clause.partition(":")
        kind = kind.strip()
        if kind not in _KINDS:
            raise ValueError(f"unknown chaos hook {kind!r}; choose from {_KINDS}")
        fields: Dict[str, str] = {}
        for pair in arguments.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, _, value = pair.partition("=")
            if not value:
                raise ValueError(f"chaos argument {pair!r} must be key=value")
            fields[key.strip()] = value.strip()
        unknown = set(fields) - {"shard", "after", "ms"}
        if unknown:
            raise ValueError(f"unknown chaos argument(s) {sorted(unknown)} in {clause!r}")
        shard_field = fields.get("shard", "*")
        shard = None if shard_field == "*" else int(shard_field)
        hook = ChaosHook(
            kind=kind,
            shard=shard,
            after=int(fields.get("after", 1)),
            ms=float(fields.get("ms", 0.0)),
        )
        if hook.after < 1:
            raise ValueError(f"chaos 'after' must be >= 1, got {hook.after}")
        if hook.ms < 0:
            raise ValueError(f"chaos 'ms' must be >= 0, got {hook.ms}")
        hooks.append(hook)
    return ChaosConfig(tuple(hooks))


def chaos_from_env(override: Optional[str] = None) -> ChaosConfig:
    """The effective chaos config: explicit ``override`` beats the env."""
    if override is not None:
        return parse_chaos(override)
    return parse_chaos(os.environ.get(CHAOS_ENV_VAR))
