"""Length-prefixed wire protocol between the supervisor and its shards.

Every message is one frame on a stream socket::

    [u32 frame length][u32 header length][header JSON utf-8][payload bytes]

The header is a small JSON object whose ``kind`` field routes it
(``hello``, ``predict``, ``result``, ``error``, ``ping``, ``pong``,
``shutdown``, ``goodbye``); numpy arrays travel as raw bytes in the
payload with their dtype/shape declared in the header, plus a CRC32 so
a corrupted reply is *detected* rather than decoded into garbage logits
(the ``corrupt-reply`` chaos hook exists to prove that path works).

Both ends frame identically; reads are exact, so a half-written frame
from a dying peer surfaces as :class:`ConnectionClosed`, never as a
mis-parsed message.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "ConnectionClosed",
    "ProtocolError",
    "decode_array",
    "encode_array",
    "recv_message",
    "send_message",
]

_LENGTH = struct.Struct(">I")

#: Upper bound on one frame (256 MiB).  A frame length beyond this is a
#: desynchronised stream, not a real request.
MAX_FRAME = 256 * 1024 * 1024


class ConnectionClosed(ConnectionError):
    """The peer closed (or killed) the connection mid-conversation."""


class ProtocolError(RuntimeError):
    """A structurally invalid frame (bad length, bad JSON, bad CRC)."""


def send_message(sock: socket.socket, header: Dict[str, Any], payload: bytes = b"") -> None:
    """Frame and send one message (header JSON + raw payload bytes)."""
    encoded = json.dumps(header, separators=(",", ":")).encode("utf-8")
    frame = _LENGTH.pack(4 + len(encoded) + len(payload)) + _LENGTH.pack(len(encoded))
    # One sendall for the whole frame: interleaving-safe as long as the
    # caller serialises sends per socket (both ends hold a write lock).
    sock.sendall(frame + encoded + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionClosed(f"peer closed with {remaining} of {count} bytes unread")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Tuple[Dict[str, Any], bytes]:
    """Read one frame; raises :class:`ConnectionClosed` on EOF."""
    (frame_length,) = _LENGTH.unpack(_recv_exact(sock, 4))
    if frame_length < 4 or frame_length > MAX_FRAME:
        raise ProtocolError(f"frame length {frame_length} outside (4, {MAX_FRAME})")
    body = _recv_exact(sock, frame_length)
    (header_length,) = _LENGTH.unpack(body[:4])
    if header_length > frame_length - 4:
        raise ProtocolError(f"header length {header_length} exceeds frame {frame_length}")
    try:
        header = json.loads(body[4 : 4 + header_length].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"unparseable frame header: {error}") from error
    if not isinstance(header, dict) or "kind" not in header:
        raise ProtocolError(f"frame header must be an object with a 'kind', got {header!r}")
    return header, body[4 + header_length :]


def encode_array(array: np.ndarray) -> Tuple[Dict[str, Any], bytes]:
    """Header fields + payload bytes describing ``array`` exactly."""
    contiguous = np.ascontiguousarray(array)
    payload = contiguous.tobytes()
    return (
        {
            "dtype": str(contiguous.dtype),
            "shape": list(contiguous.shape),
            "crc": zlib.crc32(payload),
        },
        payload,
    )


def decode_array(header: Dict[str, Any], payload: bytes, verify: bool = True) -> np.ndarray:
    """Rebuild the array an :func:`encode_array` header/payload describes.

    With ``verify`` (the default) a CRC mismatch raises
    :class:`ProtocolError` — the supervisor treats that as a shard fault
    and fails the shard over rather than serving corrupt logits.
    """
    crc: Optional[int] = header.get("crc")
    if verify and crc is not None and zlib.crc32(payload) != crc:
        raise ProtocolError("array payload failed its CRC32 check")
    dtype = np.dtype(str(header["dtype"]))
    shape = tuple(int(dim) for dim in header["shape"])
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
    if len(payload) != expected:
        raise ProtocolError(
            f"array payload holds {len(payload)} bytes but {dtype} x {shape} needs {expected}"
        )
    return np.frombuffer(payload, dtype=dtype).reshape(shape)
