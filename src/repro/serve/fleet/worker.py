"""The shard worker process: one warm ServingEngine pool behind a socket.

A worker is spawned by the supervisor with the listener address, an
authentication token, and the sealed-artifact table.  It warm-loads a
:class:`~repro.serve.engine.ServingEngine` per artifact *before* saying
hello — a shard that answers the handshake is ready to serve, so a
restarted shard never serves cold-start errors — then loops on the
length-prefixed protocol:

* ``predict`` frames are decoded and dispatched to a small handler pool
  whose threads block on the engine's micro-batcher (concurrent requests
  coalesce into shared forward passes exactly like in-process serving);
* ``ping`` frames are answered immediately from the reader loop, so
  heartbeats measure process liveness, not queue depth;
* ``shutdown`` (from the supervisor) and SIGTERM/SIGINT (from an
  operator) both *drain*: stop reading, finish every in-flight request,
  flush its reply, send ``goodbye``, and exit 0.

The :mod:`~repro.serve.fleet.chaos` hooks are consulted here — a kill
fires before the reply is sent, which is the worst case the supervisor
must survive.
"""

from __future__ import annotations

import os
import select
import signal
import socket
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import default_registry
from repro.serve.batching import QueueFullError
from repro.serve.engine import EngineConfig, ServingEngine
from repro.serve.fleet.chaos import parse_chaos
from repro.serve.fleet.protocol import (
    ConnectionClosed,
    ProtocolError,
    decode_array,
    encode_array,
    recv_message,
    send_message,
)

__all__ = ["EXIT_CHAOS_KILL", "EXIT_OK", "worker_entry", "worker_main"]

#: Exit code of a drained worker (graceful shutdown path).
EXIT_OK = 0
#: Exit code of a chaos-injected kill, distinguishable in supervisor logs.
EXIT_CHAOS_KILL = 17

#: How often the reader loop wakes to check the drain flag while idle.
_IDLE_POLL_S = 0.25


def _connect(family_name: str, address) -> socket.socket:
    family = getattr(socket, family_name)
    sock = socket.socket(family, socket.SOCK_STREAM)
    sock.connect(tuple(address) if isinstance(address, (list, tuple)) else address)
    return sock


class _Worker:
    """Per-process serving state; single reader thread + handler pool."""

    def __init__(
        self,
        sock: socket.socket,
        shard_index: int,
        engines: Dict[str, ServingEngine],
        chaos_spec: Optional[str],
        handler_threads: int,
        engine_config: Optional[EngineConfig] = None,
    ) -> None:
        self.sock = sock
        self.shard_index = shard_index
        self.engines = engines
        self.engine_config = engine_config
        # Guards ``engines`` against admin load/evict racing predicts.
        self._engines_lock = threading.Lock()
        self.chaos = parse_chaos(chaos_spec).for_shard(shard_index)
        self.draining = threading.Event()
        self.exit_code = EXIT_OK
        self._write_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, handler_threads), thread_name_prefix=f"shard{shard_index}-handler"
        )
        # Reader-thread-only counters: chaos triggers are deterministic
        # in the order frames arrive, which is the order the supervisor
        # sent them on this one stream.
        self._predicts_seen = 0
        self._pings_seen = 0

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _send(self, header: dict, payload: bytes = b"") -> None:
        with self._write_lock:
            send_message(self.sock, header, payload)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> int:
        kill = self.chaos.first("kill-shard")
        stall = self.chaos.first("stall-heartbeat")
        delay = self.chaos.first("delay-response")
        corrupt = self.chaos.first("corrupt-reply")
        try:
            while not self.draining.is_set():
                readable, _, _ = select.select([self.sock], [], [], _IDLE_POLL_S)
                if not readable:
                    continue
                try:
                    header, payload = recv_message(self.sock)
                except (ConnectionClosed, ProtocolError, OSError):
                    # Supervisor went away: nothing to drain replies to.
                    return self.exit_code
                kind = header.get("kind")
                if kind == "ping":
                    self._pings_seen += 1
                    if stall is not None and self._pings_seen > stall.after:
                        continue  # wedged on purpose: alive, but silent to heartbeats
                    self._send({"kind": "pong", "seq": header.get("seq", 0)})
                elif kind == "predict":
                    self._predicts_seen += 1
                    if kill is not None and self._predicts_seen >= kill.after:
                        # Die with the request in flight and no reply sent:
                        # the supervisor must drain and re-route it.
                        os._exit(EXIT_CHAOS_KILL)
                    corrupt_this = corrupt is not None and self._predicts_seen == corrupt.after
                    delay_ms = (
                        delay.ms
                        if delay is not None and self._predicts_seen >= delay.after
                        else 0.0
                    )
                    self._pool.submit(self._handle_predict, header, payload, corrupt_this, delay_ms)
                elif kind == "metrics":
                    # The shard's process-local snapshot (batcher, engine,
                    # and store instruments) rides back in the header; the
                    # supervisor merges it across shards.
                    self._send(
                        {
                            "kind": "metrics",
                            "id": header.get("id"),
                            "shard": self.shard_index,
                            "snapshot": default_registry().snapshot(),
                        }
                    )
                elif kind in ("load", "evict"):
                    # Admin plane: a load warm-builds the engine before the
                    # ack, so it runs on the handler pool like a predict.
                    self._pool.submit(self._handle_admin, header, kind == "load")
                elif kind == "shutdown":
                    break
                # Unknown kinds are ignored: a newer supervisor may speak
                # a superset of this protocol.
        finally:
            # Drain: every dispatched predict finishes and its reply is
            # flushed before the process exits.
            self._pool.shutdown(wait=True)
            try:
                self._send({"kind": "goodbye", "shard": self.shard_index})
            except OSError:
                pass
            with self._engines_lock:
                engines = list(self.engines.values())
            for engine in engines:
                engine.close()
            try:
                self.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self.sock.close()
        return self.exit_code

    # ------------------------------------------------------------------
    # Request handling (pool threads)
    # ------------------------------------------------------------------
    def _handle_predict(
        self, header: dict, payload: bytes, corrupt_this: bool, delay_ms: float
    ) -> None:
        request_id = header.get("id")
        try:
            inputs = decode_array(header, payload)
            with self._engines_lock:
                engine = self.engines[header.get("model")]
            logits = engine.predict(inputs)
        except KeyError:
            self._reply_error(request_id, "unknown-model", f"shard has no model {header.get('model')!r}", False)
            return
        except (ValueError, TypeError) as error:
            self._reply_error(request_id, "bad-request", str(error), False)
            return
        except QueueFullError as error:
            # The shard itself is saturated; the supervisor (or client)
            # may retry elsewhere/later.
            self._reply_error(request_id, "saturated", str(error), True)
            return
        except BaseException as error:  # noqa: BLE001 - reported, never dropped
            self._reply_error(request_id, "internal", f"{type(error).__name__}: {error}", False)
            return
        meta, body = encode_array(logits)
        if corrupt_this and body:
            # Flip the first byte but keep the declared CRC: the
            # supervisor's integrity check must catch this.
            body = bytes([body[0] ^ 0xFF]) + body[1:]
        if delay_ms > 0:
            time.sleep(delay_ms / 1000.0)
        try:
            self._send({"kind": "result", "id": request_id, **meta}, body)
        except OSError:
            pass  # supervisor gone; it will have re-routed already

    def _handle_admin(self, header: dict, load: bool) -> None:
        request_id = header.get("id")
        name = header.get("model")
        try:
            if load:
                with self._engines_lock:
                    missing = name not in self.engines
                if missing:
                    # Build outside the lock (a warm load reads megabytes
                    # of weights); last writer wins on the rare race.
                    engine = ServingEngine(
                        header.get("path"), config=self.engine_config, name=name
                    )
                    with self._engines_lock:
                        stale = self.engines.get(name)
                        self.engines[name] = engine
                    if stale is not None:
                        stale.close()
                evicted = None
            else:
                with self._engines_lock:
                    evicted = self.engines.pop(name, None)
            if evicted is not None:
                evicted.close()
            self._send({"kind": "admin-ack", "id": request_id, "model": name, "ok": True})
        except BaseException as error:  # noqa: BLE001 - reported, never dropped
            try:
                self._send(
                    {
                        "kind": "admin-ack",
                        "id": request_id,
                        "model": name,
                        "ok": False,
                        "error": f"{type(error).__name__}: {error}",
                    }
                )
            except OSError:
                pass

    def _reply_error(self, request_id, code: str, message: str, retryable: bool) -> None:
        try:
            self._send(
                {
                    "kind": "error",
                    "id": request_id,
                    "code": code,
                    "message": message,
                    "retryable": retryable,
                }
            )
        except OSError:
            pass


def worker_main(
    family_name: str,
    address,
    token: str,
    shard_index: int,
    artifacts: Sequence[Tuple[str, str]],
    engine_config: Optional[dict] = None,
    chaos_spec: Optional[str] = None,
    handler_threads: int = 4,
) -> int:
    """Run one shard worker to completion; returns the exit code."""
    config = EngineConfig(**(engine_config or {}))
    # Warm spawn: every artifact loads before the hello, so a shard that
    # joins the pool serves its first request from a hot engine.
    engines: Dict[str, ServingEngine] = {}
    try:
        for name, path in artifacts:
            engines[name] = ServingEngine(path, config=config, name=name)
    except BaseException:
        for engine in engines.values():
            engine.close()
        raise
    try:
        sock = _connect(family_name, address)
    except OSError:
        # The supervisor is already gone (fleet closed while this
        # restart was in flight): exit quietly instead of crashing with
        # a traceback nobody can act on.
        for engine in engines.values():
            engine.close()
        return EXIT_OK
    worker = _Worker(
        sock, shard_index, engines, chaos_spec, handler_threads, engine_config=config
    )

    def _drain_signal(signum, frame):  # noqa: ARG001 - stdlib signature
        worker.draining.set()

    # SIGTERM/SIGINT drain instead of killing mid-batch; only the main
    # thread of the spawned process runs this, so the handlers install
    # unconditionally.
    signal.signal(signal.SIGTERM, _drain_signal)
    signal.signal(signal.SIGINT, _drain_signal)

    worker._send(
        {
            "kind": "hello",
            "token": token,
            "shard": shard_index,
            "pid": os.getpid(),
            "models": [name for name, _ in artifacts],
        }
    )
    return worker.run()


def worker_entry(
    family_name: str,
    address,
    token: str,
    shard_index: int,
    artifacts: List[Tuple[str, str]],
    engine_config: Optional[dict],
    chaos_spec: Optional[str],
    handler_threads: int,
) -> None:
    """``multiprocessing`` entry point (spawn-safe: primitives only)."""
    sys.exit(
        worker_main(
            family_name,
            address,
            token,
            shard_index,
            artifacts,
            engine_config=engine_config,
            chaos_spec=chaos_spec,
            handler_threads=handler_threads,
        )
    )
