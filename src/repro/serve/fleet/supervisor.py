"""The fleet supervisor: an actor owning a pool of shard processes.

:class:`FleetSupervisor` scales :mod:`repro.serve` past one process.  It
spawns ``shards`` worker processes (each warm-loading every sealed
artifact), routes requests by consistent hash of the model name, and
supervises the pool the way an actor-system monitor would:

* **health checks** — periodic pings with a hard pong deadline; a shard
  that stops answering (wedged, not just dead) is killed and replaced;
* **crash detection** — a shard's socket closing, a send failing, or a
  reply failing its CRC all mark the shard down immediately;
* **restart** — dead shards respawn with exponential backoff; too many
  crashes inside a window trips a per-shard circuit breaker (state
  ``failed``) so a poisoned shard cannot crash-loop forever;
* **drain & re-route** — a dead shard's in-flight requests are re-sent
  to surviving shards (or parked until one restarts), so **no accepted
  request is ever dropped**: serving is pure, so re-execution is safe
  and each caller still gets exactly one reply;
* **backpressure** — admission is bounded per shard; a saturated pool
  rejects *new* work with :class:`FleetSaturatedError` (the HTTP layer
  turns that into 503 + ``Retry-After``) while re-routed work bypasses
  the bound because it was already accepted.

All supervisor state lives behind one lock; the static lock-discipline
rule in :mod:`repro.analysis` checks every access (reads included).
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import socket
import tempfile
import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.obs.registry import MetricsRegistry, default_registry, merge_snapshots
from repro.serve.artifact import read_artifact_meta
from repro.serve.engine import EngineConfig
from repro.serve.fleet.chaos import CHAOS_ENV_VAR, parse_chaos
from repro.serve.fleet.protocol import (
    ConnectionClosed,
    ProtocolError,
    decode_array,
    encode_array,
    recv_message,
    send_message,
)
from repro.serve.fleet.worker import worker_entry

__all__ = [
    "FleetConfig",
    "FleetError",
    "FleetSaturatedError",
    "FleetSupervisor",
    "FleetUnavailableError",
    "WorkerError",
]


#: The shard lifecycle states a slot may be in.
SHARD_STATES = ("starting", "live", "dead", "failed")


def _declare_fleet_instruments(registry: MetricsRegistry) -> Dict[str, object]:
    """Declare every fleet instrument family into ``registry``.

    Called twice with the same declarations: once at import time on the
    process-default registry (so ``python -m repro.obs doc`` documents
    the fleet instruments — nothing ever records there) and once per
    :class:`FleetSupervisor` on its private registry (so two fleets in
    one process never pollute each other's counters, and ``stats()``
    stays per-supervisor).
    """
    return {
        "accepted": registry.counter(
            "fleet_requests_accepted_total", "Requests admitted into the shard pool."
        ),
        "completed": registry.counter(
            "fleet_requests_completed_total", "Requests answered with shard results."
        ),
        "errors": registry.counter(
            "fleet_request_errors_total", "Requests a shard answered with an error."
        ),
        "rejected": registry.counter(
            "fleet_admission_rejects_total",
            "Requests rejected at admission (pool saturated or restarting).",
        ),
        "rerouted": registry.counter(
            "fleet_reroutes_total", "In-flight requests re-sent after a shard death."
        ),
        "reroutes_max": registry.gauge(
            "fleet_reroute_depth_max", "Most reroutes any single request survived."
        ),
        "crashes": registry.counter(
            "fleet_shard_crashes_total", "Shard incarnations that died (any cause)."
        ),
        "restarts": registry.counter(
            "fleet_shard_restarts_total", "Successful shard respawns after a crash."
        ),
        "heartbeat_deaths": registry.counter(
            "fleet_heartbeat_deaths_total", "Shards declared dead for missing pong deadlines."
        ),
        "corrupt_replies": registry.counter(
            "fleet_corrupt_replies_total", "Shard replies that failed their CRC integrity check."
        ),
        "heartbeat_rtt": registry.histogram(
            "fleet_heartbeat_rtt_s", "Ping-to-pong round-trip time per live shard."
        ),
        "parked": registry.gauge(
            "fleet_parked_requests", "Accepted requests parked while no shard is live.", unit="requests"
        ),
        "shard_state": registry.gauge(
            "fleet_shards", "Shards currently in each lifecycle state.", labels=("state",), unit="shards"
        ),
        "pending": registry.gauge(
            "fleet_pending_requests", "In-flight requests across all live shards.", unit="requests"
        ),
    }


# Declaration-only: makes the fleet instruments visible to the generated
# metrics reference; supervisors record into their own registries.
_declare_fleet_instruments(default_registry())


class FleetError(RuntimeError):
    """Base class for fleet-level failures."""


class FleetSaturatedError(FleetError):
    """The pool cannot admit new work right now; retry after a delay."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class FleetUnavailableError(FleetError):
    """No shard can ever take this request (breakers open / fleet closed)."""


class WorkerError(RuntimeError):
    """An error a shard reported for one request (bad input, model bug)."""

    def __init__(self, message: str, code: str = "internal", retryable: bool = False) -> None:
        super().__init__(message)
        self.code = code
        self.retryable = retryable


@dataclass(frozen=True)
class FleetConfig:
    """Pool sizing, supervision deadlines, and failure policy."""

    #: Worker processes in the pool.
    shards: int = 2
    #: Engine knobs every shard's ServingEngines are built with.
    engine: EngineConfig = field(default_factory=EngineConfig)
    #: Live shards a model's traffic spreads over (None: all shards).
    replication: Optional[int] = None
    #: In-flight requests one shard may hold before admission rejects.
    max_pending_per_shard: int = 64
    #: Seconds between heartbeat pings to each live shard.
    heartbeat_interval_s: float = 0.5
    #: Pong silence after which a live shard is declared dead.
    heartbeat_timeout_s: float = 3.0
    #: How long a spawned worker may take to warm-load and say hello.
    spawn_timeout_s: float = 120.0
    #: Default deadline a blocking predict waits for its reply.
    request_timeout_s: float = 120.0
    #: First restart backoff; doubles per crash inside the window.
    restart_backoff_s: float = 0.05
    #: Backoff ceiling.
    restart_backoff_max_s: float = 2.0
    #: Crashes inside ``restart_window_s`` before the breaker trips.
    max_restarts: int = 5
    #: Sliding window the crash counter covers.
    restart_window_s: float = 30.0
    #: ``Retry-After`` hint attached to saturation rejections.
    retry_after_s: float = 1.0
    #: Handler threads per worker (requests coalesce in its batcher).
    handler_threads: int = 4
    #: Chaos spec for fault injection (None: read ``REPRO_CHAOS``).
    chaos: Optional[str] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.max_pending_per_shard < 1:
            raise ValueError(
                f"max_pending_per_shard must be >= 1, got {self.max_pending_per_shard}"
            )
        if self.replication is not None and self.replication < 1:
            raise ValueError(f"replication must be >= 1 or None, got {self.replication}")
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ValueError("heartbeat_timeout_s must exceed heartbeat_interval_s")
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")


class _Pending:
    """One accepted request: payload plus the caller's completion gate."""

    __slots__ = ("name", "inputs", "done", "result", "error", "reroutes")

    def __init__(self, name: str, inputs: np.ndarray) -> None:
        self.name = name
        self.inputs = inputs
        self.done = threading.Event()
        self.result: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        self.reroutes = 0

    def complete(self, result: np.ndarray) -> None:
        self.result = result
        self.done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.done.set()


class _ShardLink:
    """One shard *incarnation*: process, socket, and its in-flight table.

    A restart creates a fresh link, so per-incarnation fields are only
    ever written by one thread (the reader, or the monitor for ping
    bookkeeping) and the supervisor's lock guards the shared ``pending``
    table through the owning :class:`FleetSupervisor`.
    """

    __slots__ = (
        "index",
        "generation",
        "token",
        "process",
        "conn",
        "pending",
        "last_pong",
        "last_ping",
        "ping_seq",
        "requests",
        "_send_lock",
    )

    def __init__(self, index: int, generation: int, token: str, process) -> None:
        self.index = index
        self.generation = generation
        self.token = token
        self.process = process
        self.conn: Optional[socket.socket] = None
        self.pending: Dict[int, _Pending] = {}
        self.last_pong = 0.0
        self.last_ping = 0.0
        self.ping_seq = 0
        self.requests = 0
        self._send_lock = threading.Lock()

    def send(self, header: dict, payload: bytes = b"") -> None:
        with self._send_lock:
            send_message(self.conn, header, payload)

    def destroy(self) -> None:
        """Close the socket and make sure the process is gone."""
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=5.0)


class _Slot:
    """The supervisor's fixed view of shard ``index`` across incarnations."""

    __slots__ = ("index", "state", "link", "generation", "restart_at", "crash_times")

    def __init__(self, index: int) -> None:
        self.index = index
        self.state = "starting"  # starting | live | dead | failed
        self.link: Optional[_ShardLink] = None
        self.generation = 0
        self.restart_at = 0.0
        self.crash_times: List[float] = []


class _SpawnWaiter:
    __slots__ = ("event", "conn")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.conn: Optional[socket.socket] = None


class _ControlWaiter:
    """One in-flight control round-trip (``metrics``/``load``/``evict``)."""

    __slots__ = ("event", "reply")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.reply: Optional[dict] = None


def _hash(value: str) -> int:
    return int.from_bytes(hashlib.sha1(value.encode("utf-8")).digest()[:8], "big")


def _build_ring(shards: int, vnodes: int = 64) -> List[Tuple[int, int]]:
    ring = []
    for index in range(shards):
        for vnode in range(vnodes):
            ring.append((_hash(f"shard-{index}-vnode-{vnode}"), index))
    ring.sort()
    return ring


class FleetSupervisor:
    """Supervised multi-process shard pool over sealed model artifacts."""

    def __init__(
        self,
        artifacts: Dict[str, str],
        config: Optional[FleetConfig] = None,
        default_model: Optional[str] = None,
    ) -> None:
        if not artifacts:
            raise ValueError("a fleet needs at least one registered artifact")
        self.config = config if config is not None else FleetConfig()
        # Fail fast on unreadable artifacts (and capture /models metadata)
        # before any process is spawned.
        self._artifacts = {name: os.fspath(path) for name, path in artifacts.items()}
        self._meta = {name: read_artifact_meta(path) for name, path in self._artifacts.items()}
        self.default_model = default_model if default_model is not None else next(iter(artifacts))
        if self.default_model not in self._artifacts:
            raise KeyError(f"default model {self.default_model!r} is not a registered artifact")
        chaos_spec = self.config.chaos
        if chaos_spec is None:
            chaos_spec = os.environ.get(CHAOS_ENV_VAR)
        parse_chaos(chaos_spec)  # validate before shipping it to workers
        self._chaos_spec = chaos_spec
        self._ring = _build_ring(self.config.shards)
        self._ctx = multiprocessing.get_context("spawn")

        self._lock = threading.Lock()
        self._closed = False
        self._ids = itertools.count(1)
        self._generations = itertools.count(1)
        self._parked: List[_Pending] = []
        self._waiters: Dict[str, _SpawnWaiter] = {}
        self._control: Dict[int, _ControlWaiter] = {}
        # Per-supervisor registry: counters are this fleet's alone (two
        # fleets in one test process must not share restart counts), and
        # ``metrics_snapshot`` merges shard snapshots on top of it.
        self._registry = MetricsRegistry()
        self._metrics = _declare_fleet_instruments(self._registry)
        self._slots = [_Slot(index) for index in range(self.config.shards)]

        self._listener, self._address, self._family = self._bind_listener()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fleet-accept", daemon=True
        )
        self._accept_thread.start()

        boot = [
            threading.Thread(target=self._spawn_shard, args=(slot,), daemon=True)
            for slot in self._slots
        ]
        for thread in boot:
            thread.start()
        for thread in boot:
            thread.join()
        with self._lock:
            live = [slot.index for slot in self._slots if slot.state == "live"]
        if not live:
            self.close()
            raise RuntimeError(
                f"no shard survived boot (0/{self.config.shards} live); "
                "see worker stderr for the load failure"
            )
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="fleet-monitor", daemon=True
        )
        self._monitor_thread.start()

    # ------------------------------------------------------------------
    # Listener / handshake
    # ------------------------------------------------------------------
    def _bind_listener(self):
        if hasattr(socket, "AF_UNIX"):
            root = tempfile.mkdtemp(prefix="repro-fleet-")
            path = os.path.join(root, "fleet.sock")
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            listener.listen(self.config.shards * 2 + 2)
            return listener, path, "AF_UNIX"
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(self.config.shards * 2 + 2)
        return listener, listener.getsockname(), "AF_INET"

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed: supervisor shutting down
            threading.Thread(target=self._greet, args=(conn,), daemon=True).start()

    def _greet(self, conn: socket.socket) -> None:
        conn.settimeout(10.0)
        try:
            header, _ = recv_message(conn)
        except (ConnectionClosed, ProtocolError, OSError):
            conn.close()
            return
        token = header.get("token") if header.get("kind") == "hello" else None
        conn.settimeout(None)
        with self._lock:
            waiter = self._waiters.get(token)
            if waiter is not None:
                waiter.conn = conn
        if waiter is None:
            conn.close()  # unknown/stale incarnation
            return
        waiter.event.set()

    # ------------------------------------------------------------------
    # Spawning and supervision
    # ------------------------------------------------------------------
    def _spawn_shard(self, slot: _Slot) -> None:
        with self._lock:
            if self._closed:
                return
            generation = next(self._generations)
            token = f"shard-{slot.index}-gen-{generation}"
            waiter = _SpawnWaiter()
            self._waiters[token] = waiter
            slot.state = "starting"
            was_restart = slot.generation > 0
        process = self._ctx.Process(
            target=worker_entry,
            name=token,
            daemon=True,
            args=(
                self._family,
                self._address,
                token,
                slot.index,
                sorted(self._artifacts.items()),
                {
                    "max_batch": self.config.engine.max_batch,
                    "max_wait_ms": self.config.engine.max_wait_ms,
                    "eval_batch_size": self.config.engine.eval_batch_size,
                    "sanitize": self.config.engine.sanitize,
                    "max_queue": self.config.engine.max_queue,
                },
                self._chaos_spec,
                self.config.handler_threads,
            ),
        )
        link = _ShardLink(slot.index, generation, token, process)
        try:
            process.start()
            booted = waiter.event.wait(self.config.spawn_timeout_s) and waiter.conn is not None
        except BaseException:
            booted = False
        with self._lock:
            self._waiters.pop(token, None)
        if not booted:
            link.conn = waiter.conn
            link.destroy()
            with self._lock:
                closed = self._closed
                if not closed:
                    self._metrics["crashes"].inc()
                    self._record_crash(slot)
            return
        link.conn = waiter.conn
        now = time.monotonic()
        link.last_pong = now
        link.last_ping = now
        with self._lock:
            if self._closed:
                stillborn = True
            else:
                stillborn = False
                slot.link = link
                slot.generation = generation
                slot.state = "live"
                if was_restart:
                    self._metrics["restarts"].inc()
                parked = self._parked
                self._parked = []
        if stillborn:
            link.destroy()
            return
        threading.Thread(
            target=self._reader, args=(link,), name=f"fleet-reader-{token}", daemon=True
        ).start()
        for pending in parked:
            self._reroute(pending)

    def _record_crash(self, slot: _Slot) -> None:
        """Backoff/breaker bookkeeping for one crash (lock held by caller,
        who also counts it on the ``crashes`` instrument)."""
        now = time.monotonic()
        window = self.config.restart_window_s
        slot.crash_times = [t for t in slot.crash_times if now - t <= window] + [now]
        if len(slot.crash_times) > self.config.max_restarts:
            slot.state = "failed"  # circuit breaker open: no more restarts
        else:
            slot.state = "dead"
            backoff = self.config.restart_backoff_s * (2 ** (len(slot.crash_times) - 1))
            slot.restart_at = now + min(backoff, self.config.restart_backoff_max_s)

    def _shard_down(self, link: _ShardLink, reason: str) -> None:
        """Handle one incarnation dying: drain its queue and re-route."""
        with self._lock:
            slot = self._slots[link.index]
            if slot.link is not link:
                return  # stale incarnation: already handled
            slot.link = None
            orphans = list(link.pending.values())
            link.pending.clear()
            if reason == "heartbeat timeout":
                self._metrics["heartbeat_deaths"].inc()
            if self._closed:
                slot.state = "dead"
            else:
                self._metrics["crashes"].inc()
                self._record_crash(slot)
            if orphans:
                self._metrics["rerouted"].inc(len(orphans))
            closed = self._closed
            stranded: List[_Pending] = []
            if not closed and all(s.state == "failed" for s in self._slots):
                stranded = self._parked
                self._parked = []
        link.destroy()
        if closed:
            for pending in orphans:
                pending.fail(FleetUnavailableError("fleet closed while the request was in flight"))
            return
        for pending in stranded:
            pending.fail(
                FleetUnavailableError("every shard's crash-loop breaker is open")
            )
        for pending in orphans:
            self._reroute(pending)

    def _reroute(self, pending: _Pending) -> None:
        """Re-dispatch an already-accepted request (never re-admitted)."""
        pending.reroutes += 1
        self._metrics["reroutes_max"].set_max(pending.reroutes)
        try:
            self._dispatch(pending, admission=False)
        except FleetError as error:
            pending.fail(error)

    def _monitor(self) -> None:
        interval = self.config.heartbeat_interval_s
        timeout = self.config.heartbeat_timeout_s
        while True:
            time.sleep(min(0.05, interval / 4))
            now = time.monotonic()
            with self._lock:
                if self._closed:
                    return
                due = [
                    slot
                    for slot in self._slots
                    if slot.state == "dead" and slot.restart_at <= now
                ]
                for slot in due:
                    slot.state = "starting"
                links = [slot.link for slot in self._slots if slot.state == "live"]
            for slot in due:
                threading.Thread(
                    target=self._spawn_shard, args=(slot,), daemon=True
                ).start()
            for link in links:
                if now - link.last_ping >= interval:
                    link.last_ping = now
                    link.ping_seq += 1
                    try:
                        link.send({"kind": "ping", "seq": link.ping_seq})
                    except OSError:
                        self._shard_down(link, "ping send failed")
                        continue
                if now - link.last_pong > timeout:
                    # Alive-but-wedged (or silently gone): same as death.
                    self._shard_down(link, "heartbeat timeout")

    # ------------------------------------------------------------------
    # Reader threads (one per live incarnation)
    # ------------------------------------------------------------------
    def _reader(self, link: _ShardLink) -> None:
        reason = "connection lost"
        while True:
            try:
                header, payload = recv_message(link.conn)
            except (ConnectionClosed, ProtocolError, OSError):
                break
            kind = header.get("kind")
            if kind == "result":
                with self._lock:
                    pending = link.pending.pop(header.get("id"), None)
                if pending is None:
                    continue  # re-routed (or timed out) while computing
                try:
                    result = decode_array(header, payload)
                except ProtocolError:
                    # Corrupt reply: never surface garbage logits.  Put
                    # the request back (it re-routes with the rest of the
                    # queue) and fail the shard over.
                    self._metrics["corrupt_replies"].inc()
                    with self._lock:
                        requeued = self._slots[link.index].link is link
                        if requeued:
                            link.pending[header.get("id")] = pending
                    if not requeued:
                        self._reroute(pending)
                    reason = "corrupt reply"
                    break
                self._metrics["completed"].inc()
                pending.complete(result)
            elif kind == "error":
                with self._lock:
                    pending = link.pending.pop(header.get("id"), None)
                if pending is not None:
                    self._metrics["errors"].inc()
                    pending.fail(
                        WorkerError(
                            str(header.get("message", "shard error")),
                            code=str(header.get("code", "internal")),
                            retryable=bool(header.get("retryable", False)),
                        )
                    )
            elif kind == "pong":
                now = time.monotonic()
                # Approximate RTT: ``last_ping`` is stamped by the
                # monitor just before the ping goes out.
                self._metrics["heartbeat_rtt"].observe(max(0.0, now - link.last_ping))
                link.last_pong = now
            elif kind in ("metrics", "admin-ack"):
                with self._lock:
                    waiter = self._control.get(header.get("id"))
                if waiter is not None:
                    waiter.reply = header
                    waiter.event.set()
            elif kind == "goodbye":
                reason = "drained"
                break
        self._shard_down(link, reason)

    # ------------------------------------------------------------------
    # Control plane (metrics scrapes, admin load/evict)
    # ------------------------------------------------------------------
    def _broadcast(self, header: dict, timeout: float) -> Dict[int, Optional[dict]]:
        """One control round-trip to every live shard.

        Returns ``{shard_index: reply_header_or_None}`` — ``None`` marks
        a shard that died mid-round-trip or missed the deadline.  Control
        frames ride the same ordered stream as predicts, so a reply
        describes the shard *after* everything sent before it.
        """
        with self._lock:
            if self._closed:
                raise FleetUnavailableError("fleet is closed")
            links = [slot.link for slot in self._slots if slot.state == "live"]
        waiting: Dict[int, Tuple[int, _ControlWaiter]] = {}
        for link in links:
            request_id = next(self._ids)
            waiter = _ControlWaiter()
            with self._lock:
                self._control[request_id] = waiter
            try:
                link.send({**header, "id": request_id})
            except OSError:
                with self._lock:
                    self._control.pop(request_id, None)
                self._shard_down(link, "send failed")
                waiting[link.index] = (request_id, None)
                continue
            waiting[link.index] = (request_id, waiter)
        deadline = time.monotonic() + timeout
        replies: Dict[int, Optional[dict]] = {}
        for index, (request_id, waiter) in waiting.items():
            if waiter is not None and waiter.event.wait(max(0.0, deadline - time.monotonic())):
                replies[index] = waiter.reply
            else:
                replies[index] = None
            with self._lock:
                self._control.pop(request_id, None)
        return replies

    def metrics_snapshot(self, timeout: float = 5.0) -> Dict[str, object]:
        """One merged ``repro-metrics/v1`` snapshot for the whole fleet.

        Every live shard is asked for its process-local snapshot (batch
        scheduler, engines, model store instruments) and the results are
        merged on top of the supervisor's own registry — counters and
        histogram buckets sum, so the fleet's p99 reflects every shard's
        samples.  Schema-identical to a single-process snapshot: the
        ``/metrics`` contract does not change shape behind a fleet.
        """
        with self._lock:
            states = [slot.state for slot in self._slots]
            parked = len(self._parked)
            in_flight = sum(
                len(slot.link.pending) for slot in self._slots if slot.link is not None
            )
        gauge = self._metrics["shard_state"]
        for state in SHARD_STATES:
            gauge.labelled(state=state).set(states.count(state))
        self._metrics["parked"].set(parked)
        self._metrics["pending"].set(in_flight)
        replies = self._broadcast({"kind": "metrics"}, timeout)
        shard_snapshots = [
            reply["snapshot"]
            for reply in replies.values()
            if reply is not None and isinstance(reply.get("snapshot"), dict)
        ]
        return merge_snapshots(self._registry.snapshot(), *shard_snapshots)

    def _admin_broadcast(self, kind: str, name: str, timeout: float) -> Dict[str, object]:
        if name not in self._artifacts:
            raise KeyError(
                f"no model named {name!r} is registered; available: {list(self._artifacts)}"
            )
        replies = self._broadcast(
            {"kind": kind, "model": name, "path": self._artifacts[name]}, timeout
        )
        shards = {
            str(index): (reply is not None and bool(reply.get("ok", False)))
            for index, reply in replies.items()
        }
        return {"model": name, "shards": shards, "ok": all(shards.values()) and bool(shards)}

    def admin_load(self, name: str, timeout: float = 30.0) -> Dict[str, object]:
        """Ensure every live shard holds a warm engine for ``name``."""
        return self._admin_broadcast("load", name, timeout)

    def admin_evict(self, name: str, timeout: float = 30.0) -> Dict[str, object]:
        """Drop ``name``'s engine on every live shard (reload via load)."""
        return self._admin_broadcast("evict", name, timeout)

    def queue_depth(self) -> int:
        """In-flight requests across all shards plus parked ones."""
        with self._lock:
            return len(self._parked) + sum(
                len(slot.link.pending) for slot in self._slots if slot.link is not None
            )

    # ------------------------------------------------------------------
    # Routing and dispatch
    # ------------------------------------------------------------------
    def _candidates(self, name: str) -> List[int]:
        """Shard indices in ring order starting at ``hash(name)``."""
        ring = self._ring
        start = bisect_left(ring, (_hash(f"model-{name}"), -1))
        order: List[int] = []
        for position in range(len(ring)):
            index = ring[(start + position) % len(ring)][1]
            if index not in order:
                order.append(index)
                if len(order) == self.config.shards:
                    break
        return order

    def _dispatch(
        self,
        pending: _Pending,
        admission: bool = True,
        exclude: FrozenSet[int] = frozenset(),
    ) -> None:
        """Pick a live shard for ``pending`` and send it.

        Admission (new work) is bounded per shard and rejects with
        :class:`FleetSaturatedError` when every candidate is full or
        restarting; failover (``admission=False``) bypasses the bound —
        the request was already accepted — and parks when no shard is
        live yet.
        """
        meta, payload = encode_array(pending.inputs)
        retry_after = self.config.retry_after_s
        with self._lock:
            if self._closed:
                raise FleetUnavailableError("fleet is closed")
            order = [index for index in self._candidates(pending.name) if index not in exclude]
            replication = self.config.replication
            if replication is not None and admission:
                order = order[:replication]
            live = [
                self._slots[index] for index in order if self._slots[index].state == "live"
            ]
            if not live:
                if all(slot.state == "failed" for slot in self._slots):
                    raise FleetUnavailableError(
                        "every shard's crash-loop breaker is open; the fleet needs operator attention"
                    )
                if admission:
                    self._metrics["rejected"].inc()
                    raise FleetSaturatedError(
                        "no live shard can take new work right now (restarting)",
                        retry_after=retry_after,
                    )
                self._parked.append(pending)
                return
            if admission:
                open_slots = [
                    slot
                    for slot in live
                    if len(slot.link.pending) < self.config.max_pending_per_shard
                ]
                if not open_slots:
                    self._metrics["rejected"].inc()
                    raise FleetSaturatedError(
                        f"all {len(live)} live shard(s) are at their pending bound "
                        f"({self.config.max_pending_per_shard}); retry later",
                        retry_after=retry_after,
                    )
                live = open_slots
            slot = min(live, key=lambda candidate: len(candidate.link.pending))
            link = slot.link
            request_id = next(self._ids)
            link.pending[request_id] = pending
            link.requests += 1
            if admission:
                self._metrics["accepted"].inc()
        try:
            link.send({"kind": "predict", "id": request_id, "model": pending.name, **meta}, payload)
        except OSError:
            # The shard died between selection and send; its drain pass
            # picks this request up (it is registered) and re-routes it.
            self._shard_down(link, "send failed")

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def predict(
        self, inputs, model: Optional[str] = None, timeout: Optional[float] = None
    ) -> np.ndarray:
        """Logits for ``inputs`` from whichever shard the ring picks.

        Blocks until a reply arrives (re-routing transparently across
        shard deaths); raises :class:`FleetSaturatedError` if the pool
        cannot admit the request and :class:`WorkerError` if the shard
        rejected it (bad shape, unknown model on the shard).
        """
        name = model if model is not None else self.default_model
        if name not in self._artifacts:
            raise KeyError(
                f"no model named {name!r} is registered; available: {list(self._artifacts)}"
            )
        pending = _Pending(name, np.asarray(inputs))
        self._dispatch(pending)
        deadline = timeout if timeout is not None else self.config.request_timeout_s
        if not pending.done.wait(deadline):
            raise TimeoutError(f"fleet request for {name!r} timed out after {deadline}s")
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    def names(self) -> List[str]:
        """Registered model names (every shard serves all of them)."""
        return list(self._artifacts)

    def describe(self) -> List[Dict[str, object]]:
        """Artifact metadata per model, as captured at boot."""
        return [
            {"name": name, "path": path, "loaded": True, **self._meta[name]}
            for name, path in self._artifacts.items()
        ]

    def shard_states(self) -> List[Dict[str, object]]:
        """Live per-shard snapshot (what ``/healthz`` reports)."""
        with self._lock:
            return [
                {
                    "shard": slot.index,
                    "state": slot.state,
                    "generation": slot.generation,
                    "pending": len(slot.link.pending) if slot.link is not None else 0,
                    "requests": slot.link.requests if slot.link is not None else 0,
                    "recent_crashes": len(slot.crash_times),
                }
                for slot in self._slots
            ]

    def stats(self) -> Dict[str, object]:
        """Supervisor counters plus the shard snapshot.

        The counters read from this fleet's private metrics registry —
        the same instruments ``/metrics`` serves — so an operator's
        dashboard and a test's ``stats()`` assertion can never disagree.
        """
        snapshot: Dict[str, object] = {
            key: int(self._metrics[key].value)
            for key in (
                "accepted",
                "completed",
                "errors",
                "rejected",
                "rerouted",
                "reroutes_max",
                "crashes",
                "restarts",
                "heartbeat_deaths",
                "corrupt_replies",
            )
        }
        with self._lock:
            parked = len(self._parked)
        snapshot["parked"] = parked
        snapshot["shards"] = self.shard_states()
        return snapshot

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self, timeout: float = 10.0) -> None:
        """Drain and stop every shard, then release the listener."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            links = [slot.link for slot in self._slots if slot.link is not None]
            for slot in self._slots:
                slot.link = None
                if slot.state != "failed":
                    slot.state = "dead"
            parked = self._parked
            self._parked = []
        for pending in parked:
            pending.fail(FleetUnavailableError("fleet closed"))
        for link in links:
            try:
                link.send({"kind": "shutdown"})
            except OSError:
                pass
        deadline = time.monotonic() + timeout
        for link in links:
            link.process.join(timeout=max(0.1, deadline - time.monotonic()))
            # In-flight requests were drained by the worker before its
            # goodbye; anything still pending is failed over cleanly.
            orphans = list(link.pending.values())
            link.pending.clear()
            for pending in orphans:
                pending.fail(FleetUnavailableError("fleet closed while the request was in flight"))
            link.destroy()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._family == "AF_UNIX":
            try:
                os.unlink(self._address)
                os.rmdir(os.path.dirname(self._address))
            except OSError:
                pass

    def __enter__(self) -> "FleetSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
