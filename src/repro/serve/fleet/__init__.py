"""repro.serve.fleet: supervised multi-process shard pool.

The fleet scales :mod:`repro.serve` beyond one process without giving up
its guarantees: every shard warm-loads the same sealed artifacts, the
supervisor routes by consistent hash and survives shard death with
zero-loss failover, and :mod:`~repro.serve.fleet.chaos` makes every
failure mode reproducible on demand.
"""

from repro.serve.fleet.chaos import CHAOS_ENV_VAR, ChaosConfig, ChaosHook, parse_chaos
from repro.serve.fleet.protocol import (
    ConnectionClosed,
    ProtocolError,
    decode_array,
    encode_array,
    recv_message,
    send_message,
)
from repro.serve.fleet.supervisor import (
    FleetConfig,
    FleetError,
    FleetSaturatedError,
    FleetSupervisor,
    FleetUnavailableError,
    WorkerError,
)
from repro.serve.fleet.worker import EXIT_CHAOS_KILL, EXIT_OK, worker_main

__all__ = [
    "CHAOS_ENV_VAR",
    "ChaosConfig",
    "ChaosHook",
    "ConnectionClosed",
    "EXIT_CHAOS_KILL",
    "EXIT_OK",
    "FleetConfig",
    "FleetError",
    "FleetSaturatedError",
    "FleetSupervisor",
    "FleetUnavailableError",
    "ProtocolError",
    "WorkerError",
    "decode_array",
    "encode_array",
    "parse_chaos",
    "recv_message",
    "send_message",
    "worker_main",
]
