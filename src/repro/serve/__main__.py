"""``python -m repro.serve`` — serve sealed model artifacts over HTTP."""

import sys

from repro.serve.http import main

if __name__ == "__main__":
    sys.exit(main())
