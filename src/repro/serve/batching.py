"""Dynamic micro-batching: queue, coalesce, run once, fan back out.

Serving traffic arrives as many small, independent requests, but the
numpy inference path is dramatically more efficient per sample on large
batches (one im2col GEMM instead of N tiny ones).  :class:`MicroBatcher`
closes that gap: caller threads submit request tensors and block; a
single scheduler thread pulls requests off the queue, coalesces them
until the window holds ``max_batch`` rows or ``max_wait_ms`` has passed
since the first request, runs the whole window through the batch
function **once**, and distributes the result slices back to the
waiting callers.

Scheduling rules:

* a lone request never waits longer than ``max_wait_ms`` — under light
  traffic latency is bounded by the wait budget, not by batch filling;
* requests are never split: one larger than ``max_batch`` closes its
  window immediately and runs alone (the batch function chunks
  internally);
* empty requests (zero rows) flow through like any other and receive
  the zero-length slice of the result, preserving the engine's
  empty-input contract;
* an exception from the batch function is delivered to every caller in
  the window, and the scheduler keeps serving subsequent windows.

Only the scheduler thread touches the model, so the forward pass needs
no locking no matter how many client threads submit concurrently.
"""

from __future__ import annotations

import collections
import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.obs.registry import default_registry
from repro.tensor.dtypes import ACCUMULATION_DTYPE

__all__ = ["BatchingConfig", "BatchStats", "MicroBatcher", "QueueFullError"]

#: Ring-buffer size for per-request latency samples.  Percentiles are
#: computed over the most recent window, so a long-lived server reports
#: current behaviour rather than its lifetime average.
LATENCY_WINDOW = 2048

_REGISTRY = default_registry()
_M_QUEUE_DEPTH = _REGISTRY.gauge(
    "serve_batch_queue_depth", "Requests queued ahead of the scheduler right now.", unit="requests"
)
_M_OCCUPANCY = _REGISTRY.histogram(
    "serve_batch_occupancy_rows",
    "Rows coalesced into each flushed batch window.",
    unit="rows",
    bounds=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
)
_M_COALESCE = _REGISTRY.histogram(
    "serve_batch_coalesce_latency_s",
    "Per-request submit-to-result latency through the micro-batcher.",
)
_M_REQUESTS = _REGISTRY.counter(
    "serve_batch_requests_total", "Requests served through micro-batch windows."
)
_M_BATCHES = _REGISTRY.counter(
    "serve_batch_batches_total", "Batch windows flushed through the batch function."
)
_M_ERRORS = _REGISTRY.counter(
    "serve_batch_errors_total", "Batch windows whose batch function raised."
)
_M_REJECTS = _REGISTRY.counter(
    "serve_batch_rejects_total", "Submissions rejected because the bounded queue was full."
)
_M_TIMEOUTS = _REGISTRY.counter(
    "serve_batch_timeouts_total", "Submissions that gave up waiting for their result."
)


class QueueFullError(RuntimeError):
    """The batcher's bounded queue is full; the request was rejected.

    Raised from :meth:`MicroBatcher.submit` *immediately* (never after a
    wait) so overload degrades gracefully: the caller gets a clear,
    retryable signal instead of the queue growing without limit.  The
    fleet worker maps this to a retryable ``saturated`` error, and the
    HTTP layer to ``503`` + ``Retry-After``.
    """


@dataclass(frozen=True)
class BatchingConfig:
    """Coalescing policy of a :class:`MicroBatcher`.

    ``max_batch`` caps the rows in one window; ``max_wait_ms`` bounds
    how long the first request of a window waits for company.  With
    ``max_batch=1`` (or ``max_wait_ms=0`` under serial traffic) the
    batcher degrades to one-request-at-a-time processing, which is the
    baseline the serving benchmark compares against.  ``max_queue``
    bounds how many requests may sit queued ahead of the scheduler
    (0 means unbounded, the historical behaviour); a full queue rejects
    new submissions with :class:`QueueFullError`.
    """

    max_batch: int = 64
    max_wait_ms: float = 2.0
    max_queue: int = 0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0 (0 = unbounded), got {self.max_queue}")


@dataclass
class BatchStats:
    """Counters the scheduler maintains (snapshot via :meth:`as_dict`)."""

    requests: int = 0
    rows: int = 0
    batches: int = 0
    coalesced_requests_max: int = 0
    batch_rows_max: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, float]:
        mean = self.rows / self.batches if self.batches else 0.0
        return {
            "requests": self.requests,
            "rows": self.rows,
            "batches": self.batches,
            "coalesced_requests_max": self.coalesced_requests_max,
            "batch_rows_max": self.batch_rows_max,
            "batch_rows_mean": round(mean, 3),
            "errors": self.errors,
        }


class _Pending:
    """One in-flight request: its rows plus the caller's completion gate."""

    __slots__ = ("inputs", "rows", "done", "result", "error", "enqueued")

    def __init__(self, inputs: np.ndarray) -> None:
        self.inputs = inputs
        self.rows = int(inputs.shape[0])
        self.done = threading.Event()
        self.result: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        self.enqueued = time.perf_counter()


class MicroBatcher:
    """Coalesce concurrent requests into single batch-function calls.

    ``batch_fn`` receives one array of stacked request rows and must
    return an array whose leading dimension matches it (zero-length
    input included).  It always runs on the scheduler thread.
    """

    def __init__(
        self,
        batch_fn: Callable[[np.ndarray], np.ndarray],
        config: Optional[BatchingConfig] = None,
    ) -> None:
        self._batch_fn = batch_fn
        self.config = config if config is not None else BatchingConfig()
        # maxsize counts requests, not rows: the point is bounding queued
        # callers (and their arrays), and per-request admission keeps the
        # reject check O(1).
        self._queue: "queue.Queue[Optional[_Pending]]" = queue.Queue(
            maxsize=self.config.max_queue
        )
        self._stats = BatchStats()
        self._latencies_s: "collections.deque[float]" = collections.deque(maxlen=LATENCY_WINDOW)
        self._stats_lock = threading.Lock()
        # Makes enqueueing and the shutdown sentinel mutually exclusive:
        # no request can slip into the queue *behind* the sentinel and
        # hang its caller forever.
        self._submit_lock = threading.Lock()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, inputs: np.ndarray, timeout: Optional[float] = None) -> np.ndarray:
        """Enqueue ``inputs`` and block until its results are ready.

        With ``max_queue`` set and the queue full, rejects immediately
        with :class:`QueueFullError` — submit never waits for space.
        ``timeout`` (seconds) bounds the wait for the *result*; on
        expiry a :class:`TimeoutError` is raised and the request's
        eventual result is discarded (the batch still runs — the
        scheduler never skips accepted work).
        """
        pending = _Pending(np.asarray(inputs))
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed MicroBatcher")
            try:
                self._queue.put_nowait(pending)
            except queue.Full:
                _M_REJECTS.inc()
                raise QueueFullError(
                    f"micro-batcher queue is full ({self.config.max_queue} requests "
                    "queued); retry later or raise BatchingConfig.max_queue"
                ) from None
        _M_QUEUE_DEPTH.set(self._queue.qsize())  # repro: ignore[lock-discipline] -- qsize() is Queue's own locked read; the gauge is advisory
        if not pending.done.wait(timeout):
            _M_TIMEOUTS.inc()
            raise TimeoutError(
                f"request ({pending.rows} rows) not served within {timeout}s; "
                "it stays queued and its result will be discarded"
            )
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    def stats(self) -> Dict[str, float]:
        """A snapshot of the scheduler's counters and latency percentiles.

        ``latency_p50_ms`` / ``latency_p99_ms`` cover the most recent
        :data:`LATENCY_WINDOW` requests, measured submit-to-result on
        the monotonic clock; they are ``None`` while the window is empty
        (no traffic is not the same thing as zero latency).  The whole
        snapshot — counters *and* the latency window copy — is taken
        under ``_stats_lock``, so the percentiles always describe the
        same set of requests as the counters next to them.
        """
        with self._stats_lock:
            snapshot = self._stats.as_dict()
            samples = tuple(self._latencies_s)
        if samples:
            window = np.asarray(samples, dtype=ACCUMULATION_DTYPE) * 1000.0
            snapshot["latency_p50_ms"] = round(float(np.percentile(window, 50)), 4)
            snapshot["latency_p99_ms"] = round(float(np.percentile(window, 99)), 4)
        else:
            snapshot["latency_p50_ms"] = None
            snapshot["latency_p99_ms"] = None
        return snapshot

    @property
    def queue_depth(self) -> int:
        """Requests currently queued ahead of the scheduler."""
        return self._queue.qsize()  # repro: ignore[lock-discipline] -- qsize() is Queue's own locked read; the depth is advisory

    def close(self, timeout: float = 10.0) -> None:
        """Stop the scheduler thread; queued requests are still served.

        The queue is FIFO and the shutdown sentinel goes in behind the
        last accepted request (``_submit_lock``), so everything enqueued
        before ``close`` is flushed before the scheduler exits.  On a
        bounded queue the sentinel ``put`` may briefly block for a free
        slot; the scheduler is still draining, so it always lands.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(None)
        self._thread.join(timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Scheduler side
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            head = self._queue.get()  # repro: ignore[lock-discipline] -- SimpleQueue is thread-safe; the scheduler consumes lock-free by design
            if head is None:
                return
            window = [head]
            rows = head.rows
            deadline = time.monotonic() + self.config.max_wait_ms / 1000.0
            shutdown = False
            while rows < self.config.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)  # repro: ignore[lock-discipline] -- SimpleQueue is thread-safe; the scheduler consumes lock-free by design
                except queue.Empty:
                    break
                if item is None:
                    shutdown = True
                    break
                window.append(item)
                rows += item.rows
            self._flush(window, rows)
            if shutdown:
                return

    def _flush(self, window: List[_Pending], rows: int) -> None:
        failed = False
        try:
            if len(window) == 1:
                # Fast path — also guarantees a lone request's result is
                # exactly ``batch_fn(inputs)``, with no concatenate/slice
                # round-trip in between.
                window[0].result = self._batch_fn(window[0].inputs)
            else:
                batch = np.concatenate([pending.inputs for pending in window], axis=0)
                results = self._batch_fn(batch)
                offset = 0
                for pending in window:
                    pending.result = results[offset : offset + pending.rows]
                    offset += pending.rows
        except BaseException as error:  # noqa: BLE001 - delivered to callers
            failed = True
            for pending in window:
                pending.error = error
        # Counters land *before* any caller wakes: a ``stats()`` read
        # right after ``submit`` returns always includes the window
        # that served the request.
        completed = time.perf_counter()
        with self._stats_lock:
            self._stats.requests += len(window)
            self._stats.rows += rows
            self._stats.batches += 1
            self._stats.coalesced_requests_max = max(
                self._stats.coalesced_requests_max, len(window)
            )
            self._stats.batch_rows_max = max(self._stats.batch_rows_max, rows)
            if failed:
                self._stats.errors += 1
            for pending in window:
                self._latencies_s.append(completed - pending.enqueued)
        # Registry instruments record outside ``_stats_lock``: each child
        # carries its own lock, and ``stats()`` readers never touch them.
        _M_REQUESTS.inc(len(window))
        _M_BATCHES.inc()
        _M_OCCUPANCY.observe(rows)
        _M_QUEUE_DEPTH.set(self._queue.qsize())  # repro: ignore[lock-discipline] -- qsize() is Queue's own locked read; the gauge is advisory
        if failed:
            _M_ERRORS.inc()
        for pending in window:
            _M_COALESCE.observe(completed - pending.enqueued)
        for pending in window:
            pending.done.set()
