"""Sealed ``repro-model/v1`` model artifacts.

An artifact is the deployable end product of the compression pipeline:
one ``.npz`` bundle containing a **fused, mask-applied** inference model
plus everything a server needs to answer traffic with it —

* the state dict of the Conv+BN-folded evaluation graph (see
  :mod:`repro.nn.fuse`), captured after the pruning mask multiplied
  into the weights, so loading never re-runs folding arithmetic and
  predictions are byte-identical to the exporting process;
* the pruning mask itself, bit-packed 8-to-a-byte (``np.packbits``),
  kept for audit/validation — inference does not need it because the
  pruned weights are already zero in the sealed state;
* the compute dtype, an input preprocessing spec (layout, channels,
  resolution, value range), and free-form provenance (experiment id,
  scale, run-store config hash, winning-row metrics).

Scalar fields travel in a JSON header entry exactly like
:meth:`repro.core.tickets.Ticket.save`; arrays keep their native npz
encoding.  Writes are atomic (staging + rename via
:func:`repro.utils.checkpoint.save_state_dict`), so a killed export can
never leave a truncated artifact for a server to trip over.

``export_artifact`` seals a :class:`~repro.core.tickets.Ticket` (plus a
trained head) or an already-assembled model; ``load_artifact`` is the
inverse, and :meth:`ModelArtifact.build_model` rebuilds the runnable
evaluation graph.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.tickets import Ticket
from repro.models.heads import ClassifierHead
from repro.models.registry import build_model
from repro.nn.fuse import fuse, fusible_pairs
from repro.nn.module import Module
from repro.pruning.mask import PruningMask
from repro.tensor import sparse as _sparse
from repro.tensor.dtypes import default_dtype_scope
from repro.utils.checkpoint import load_state_dict, save_state_dict, verify_dtypes

__all__ = [
    "MODEL_ARTIFACT_FORMAT",
    "ModelArtifact",
    "default_preprocessing",
    "export_artifact",
    "load_artifact",
]

#: Format tag stamped into (and required from) sealed model artifacts.
MODEL_ARTIFACT_FORMAT = "repro-model/v1"

#: Bump after an incompatible layout change; loaders reject other versions.
MODEL_ARTIFACT_VERSION = 1

_HEADER_KEY = "__model_artifact_header__"
_STATE_PREFIX = "state./"
_MASK_PREFIX = "mask./"
_SPARSE_PREFIX = "sparse./"

#: State arrays this sparse (zero fraction) and this large are written
#: as nonzeros + a bit-packed occupancy mask instead of dense.
#: ``np.savez`` stores members uncompressed, so every sealed zero costs
#: its full ``itemsize`` on disk; the sparse encoding costs
#: ``(1 - s) * itemsize + 1/8`` bytes per element — ~4x smaller at 80%
#: sparsity for float32.  Small arrays (biases, head rows) stay dense:
#: their encoding overhead outweighs the bytes saved.
SPARSE_ENCODE_MIN_SPARSITY = 0.25
SPARSE_ENCODE_MIN_SIZE = 1024


def _parse_header(path: str, raw: np.ndarray) -> Dict[str, object]:
    """Decode and validate the JSON header entry of an artifact archive.

    Shared by :meth:`ModelArtifact.load` and :func:`read_artifact_meta`
    so a format/version bump can never make metadata reads and full
    loads disagree about which artifacts are valid.
    """
    header = json.loads(raw.tobytes().decode("utf-8"))
    if header.get("format") != MODEL_ARTIFACT_FORMAT:
        raise ValueError(
            f"{path!r} has format {header.get('format')!r}, "
            f"expected {MODEL_ARTIFACT_FORMAT}"
        )
    if header.get("version") != MODEL_ARTIFACT_VERSION:
        raise ValueError(
            f"{path!r} has artifact version {header.get('version')!r}, "
            f"this build reads version {MODEL_ARTIFACT_VERSION}"
        )
    return header


def _meta_dict(
    model_name, base_width, num_classes, dtype, sparsity, preprocessing, provenance
) -> Dict[str, object]:
    """The one metadata shape every caller sees.

    :meth:`ModelArtifact.describe` (full loads) and
    :func:`read_artifact_meta` (header-only reads) both build their
    result here, so ``/models`` metadata can never drift from what a
    loaded artifact reports.
    """
    return {
        "format": MODEL_ARTIFACT_FORMAT,
        "model_name": str(model_name),
        "base_width": int(base_width),
        "num_classes": int(num_classes),
        "dtype": str(dtype),
        "sparsity": round(float(sparsity), 6),
        "preprocessing": dict(preprocessing),
        "provenance": dict(provenance),
    }


def _unpack_mask(path: str, name: str, shape, packed: Optional[np.ndarray]) -> np.ndarray:
    """Restore one bit-packed mask to its original uint8 shape."""
    if packed is None:
        raise ValueError(f"artifact {path!r} is missing packed mask {name!r}")
    count = int(np.prod(shape)) if shape else 1
    bits = np.unpackbits(packed.reshape(-1), count=count)
    return bits.reshape(shape).astype(np.uint8)


def default_preprocessing(image_size: int = 16, channels: int = 3) -> Dict[str, object]:
    """The preprocessing spec of the synthetic task family.

    The engine enforces the layout and shape (``NCHW``, ``channels`` x
    ``image_size`` x ``image_size``); ``value_range`` documents the
    float domain the model was trained on but is not enforced, so
    clients may legitimately send e.g. adversarially perturbed inputs.
    """
    return {
        "layout": "NCHW",
        "channels": int(channels),
        "image_size": int(image_size),
        "value_range": [0.0, 1.0],
    }


@dataclass
class ModelArtifact:
    """A sealed, self-contained inference model (see module docstring).

    ``state`` holds the fused evaluation graph's arrays; ``mask_state``
    the (unpacked) binary pruning masks keyed by the fused model's
    parameter names.  ``dtype`` is the compute precision the model was
    sealed under — :meth:`build_model` restores it regardless of the
    loading process's engine default.
    """

    model_name: str
    base_width: int
    num_classes: int
    dtype: str
    state: Dict[str, np.ndarray]
    mask_state: Dict[str, np.ndarray] = field(default_factory=dict)
    preprocessing: Dict[str, object] = field(default_factory=default_preprocessing)
    provenance: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def input_shape(self) -> Tuple[int, int, int]:
        """Expected per-sample input shape ``(C, H, W)``."""
        channels = int(self.preprocessing.get("channels", 3))
        size = int(self.preprocessing.get("image_size", 16))
        return (channels, size, size)

    def mask(self) -> Optional[PruningMask]:
        """The sealed pruning mask, or ``None`` for a dense artifact."""
        return PruningMask(self.mask_state) if self.mask_state else None

    def sparsity(self) -> float:
        """Fraction of pruned weights recorded in the sealed mask."""
        mask = self.mask()
        return mask.sparsity() if mask is not None else 0.0

    def describe(self) -> Dict[str, object]:
        """JSON-able metadata (what ``/models`` reports per artifact)."""
        return _meta_dict(
            self.model_name,
            self.base_width,
            self.num_classes,
            self.dtype,
            self.sparsity(),
            self.preprocessing,
            self.provenance,
        )

    # ------------------------------------------------------------------
    # Rebuilding the runnable model
    # ------------------------------------------------------------------
    def build_model(self, seed: int = 0) -> Module:
        """Reconstruct the sealed evaluation graph.

        The architecture is rebuilt (backbone + classifier head, then
        Conv+BN folding to obtain the fused graph's shape), and the
        sealed arrays are loaded verbatim — under a dtype scope pinned
        to the artifact's compute precision, so every parameter keeps
        its exact bytes and a prediction here matches the exporting
        process bit for bit.
        """
        # Imported lazily to keep this module importable from the
        # tensor layer up (compact pulls in the model zoo's blocks).
        from repro.pruning.compact import conform_to_state

        with default_dtype_scope(self.dtype):
            backbone = build_model(self.model_name, base_width=self.base_width, seed=seed)
            model = ClassifierHead(backbone, num_classes=self.num_classes, seed=seed)
            sealed = fuse(model)
            # Compacted artifacts sealed physically smaller convolutions
            # than the registry skeleton; re-dimension those layers to
            # the sealed shapes (a no-op for dense artifacts) before the
            # strict load fills the values.
            conform_to_state(sealed, self.state)
            sealed.load_state_dict(self.state)
        sealed.eval()
        sealed.requires_grad_(False)
        return sealed

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def save(self, path: str) -> str:
        """Write the artifact as one atomic ``.npz`` bundle.

        State arrays past the sparsity/size floors travel as nonzeros +
        a bit-packed occupancy mask (see :data:`SPARSE_ENCODE_MIN_SPARSITY`)
        whenever that is strictly smaller; :meth:`load` rebuilds the
        dense bytes exactly.  The write also stamps size accounting into
        ``provenance``: ``state_bytes`` (dense vs encoded array bytes)
        and ``artifact_bytes`` — the artifact's own on-disk size, made
        self-consistent by re-sealing until the recorded number matches
        the file it lands in.
        """
        payload: Dict[str, np.ndarray] = {}
        sparse_shapes: Dict[str, list] = {}
        dense_bytes = 0
        encoded_bytes = 0
        for name, value in self.state.items():
            array = np.asarray(value)
            dense_bytes += array.nbytes
            if (
                array.size >= SPARSE_ENCODE_MIN_SIZE
                and array.dtype.kind == "f"
                and 1.0 - np.count_nonzero(array) / array.size >= SPARSE_ENCODE_MIN_SPARSITY
            ):
                values, bits = _sparse.pack_dense(array)
                if values.nbytes + bits.nbytes < array.nbytes:
                    payload[f"{_SPARSE_PREFIX}{name}/values"] = values
                    payload[f"{_SPARSE_PREFIX}{name}/bits"] = bits
                    sparse_shapes[name] = list(array.shape)
                    encoded_bytes += values.nbytes + bits.nbytes
                    continue
            payload[f"{_STATE_PREFIX}{name}"] = array
            encoded_bytes += array.nbytes
        mask_shapes: Dict[str, list] = {}
        for name, value in self.mask_state.items():
            mask = np.asarray(value, dtype=np.uint8)
            payload[f"{_MASK_PREFIX}{name}"] = np.packbits(mask.reshape(-1))
            mask_shapes[name] = list(mask.shape)
        self.provenance["state_bytes"] = {
            "dense": int(dense_bytes),
            "encoded": int(encoded_bytes),
        }
        written = path
        for _ in range(4):
            header = {
                "format": MODEL_ARTIFACT_FORMAT,
                "version": MODEL_ARTIFACT_VERSION,
                "model_name": self.model_name,
                "base_width": self.base_width,
                "num_classes": self.num_classes,
                "dtype": self.dtype,
                "state_dtypes": {
                    name: str(np.asarray(value).dtype) for name, value in self.state.items()
                },
                "mask_shapes": mask_shapes,
                "sparse_shapes": sparse_shapes,
                "preprocessing": self.preprocessing,
                "provenance": self.provenance,
            }
            payload[_HEADER_KEY] = np.frombuffer(
                json.dumps(header).encode("utf-8"), dtype=np.uint8
            )
            written = save_state_dict(payload, path)
            size = os.path.getsize(written)
            if self.provenance.get("artifact_bytes") == size:
                break
            # Recording the size changes the header (and so the size);
            # iterate to the fixed point — the digit count stabilises
            # after one round, so this converges on the second write.
            self.provenance["artifact_bytes"] = size
        return written

    @classmethod
    def load(cls, path: str) -> "ModelArtifact":
        """Re-hydrate an artifact previously written by :meth:`save`."""
        try:
            payload = load_state_dict(path)
        except (OSError, ValueError) as error:
            raise ValueError(f"cannot read model artifact {path!r}: {error}") from error
        if _HEADER_KEY not in payload:
            raise ValueError(f"{path!r} is not a {MODEL_ARTIFACT_FORMAT} artifact")
        header = _parse_header(path, payload[_HEADER_KEY])
        state: Dict[str, np.ndarray] = {}
        for name, value in payload.items():
            if name.startswith(_STATE_PREFIX):
                state[name[len(_STATE_PREFIX) :]] = value
        for name, shape in header.get("sparse_shapes", {}).items():
            values = payload.get(f"{_SPARSE_PREFIX}{name}/values")
            bits = payload.get(f"{_SPARSE_PREFIX}{name}/bits")
            if values is None or bits is None:
                raise ValueError(
                    f"artifact {path!r} is missing the sparse payload for {name!r}"
                )
            state[name] = _sparse.unpack_dense(values, bits, tuple(shape), values.dtype)
        verify_dtypes(header.get("state_dtypes", {}), state, path)
        mask_state: Dict[str, np.ndarray] = {}
        for name, shape in header.get("mask_shapes", {}).items():
            mask_state[name] = _unpack_mask(
                path, name, shape, payload.get(f"{_MASK_PREFIX}{name}")
            )
        return cls(
            model_name=header["model_name"],
            base_width=int(header["base_width"]),
            num_classes=int(header["num_classes"]),
            dtype=str(header["dtype"]),
            state=state,
            mask_state=mask_state,
            preprocessing=dict(header.get("preprocessing", {})),
            provenance=dict(header.get("provenance", {})),
        )


def export_artifact(
    source,
    path: str,
    *,
    num_classes: Optional[int] = None,
    head: Optional[Module] = None,
    head_state: Optional[Dict[str, np.ndarray]] = None,
    model_name: Optional[str] = None,
    base_width: Optional[int] = None,
    mask: Optional[PruningMask] = None,
    preprocessing: Optional[Dict[str, object]] = None,
    provenance: Optional[Dict[str, object]] = None,
    seed: int = 0,
    compact: bool = True,
) -> str:
    """Seal ``source`` (a :class:`Ticket` or an assembled model) to ``path``.

    From a **ticket**: the backbone is materialised (pretrained weights
    with the mask multiplied in), a classifier head for ``num_classes``
    is attached, and ``head`` (a trained module mounted as ``fc``) or
    ``head_state`` (arrays loaded into the fresh head) supplies the
    trained classifier; without either, the seeded fresh head is sealed
    as-is.  From a **module** (a :class:`ClassifierHead`-shaped model):
    ``model_name``/``base_width`` must identify the backbone recipe so
    the loader can rebuild the architecture, and ``mask`` optionally
    records the sparsity pattern.

    Either way the model is folded to its evaluation graph
    (:func:`repro.nn.fuse.fuse`) before capture, and — unless
    ``compact=False`` — structurally pruned channels are physically
    deleted from the fused graph (:func:`repro.pruning.compact.compact`),
    so the artifact stores exactly (and only) the arrays that produce
    inference logits; the compaction decisions land in the sealed
    provenance under ``"compaction"``.  Returns the written path
    (``.npz`` appended if missing).
    """
    if isinstance(source, Ticket):
        if num_classes is None:
            raise ValueError("num_classes is required when exporting a Ticket")
        backbone = source.materialise(seed=seed)
        model: Module = ClassifierHead(backbone, num_classes=num_classes, seed=seed)
        if head is not None:
            model.fc = head
        elif head_state is not None:
            model.fc.load_state_dict(head_state)
        model_name = source.model_name
        base_width = source.base_width
        mask = mask if mask is not None else source.mask.add_prefix("backbone.")
        ticket_provenance = {
            "ticket": source.name,
            "scheme": source.scheme,
            "prior": source.prior,
            "granularity": source.granularity,
            "ticket_sparsity": round(source.sparsity, 6),
            **{f"ticket_{key}": value for key, value in source.metadata.items()},
        }
        provenance = {**ticket_provenance, **(provenance or {})}
    else:
        model = source
        if model_name is None or base_width is None:
            raise ValueError(
                "model_name and base_width are required when exporting a bare model "
                "(the loader rebuilds the architecture from the registry)"
            )
        if num_classes is None:
            num_classes = getattr(model, "num_classes", None)
        if num_classes is None:
            raise ValueError("num_classes could not be inferred from the model")

    if fusible_pairs(model) == 0:
        raise ValueError(
            "the exported model has no Conv+BN pairs to fold; repro-model/v1 seals "
            "the fused evaluation graph of a ClassifierHead-shaped model"
        )
    sealed = fuse(model)

    # Static graph check: prove the sealed graph is shape- and
    # dtype-consistent (and the mask matches its parameters) *before*
    # anything is written.  An unservable model fails here, at export
    # time, instead of at the first request against a live engine.
    # Imported lazily — repro.analysis imports the model zoo, and the
    # artifact module must stay importable from the tensor layer up.
    from repro.analysis.graph import check_model

    spec = preprocessing if preprocessing is not None else default_preprocessing()
    size = int(spec.get("image_size", 16))
    input_shape = (int(spec.get("channels", 3)), size, size)
    check_model(sealed, input_shape, mask=mask.as_dict() if mask is not None else None)

    provenance = dict(provenance or {})
    if compact:
        # Physically delete provably-removable pruned channels from the
        # fused graph.  The mask was validated against the pre-compaction
        # graph above (its shapes describe the dense architecture); the
        # compacted tree is re-verified on its own.
        from repro.pruning.compact import compact as compact_pass

        sealed, report = compact_pass(sealed)
        if report.removed_channels():
            check_model(sealed, input_shape)
        provenance["compaction"] = report.summary()

    state = sealed.state_dict()
    dtypes = {str(value.dtype) for value in state.values()}
    if len(dtypes) != 1:
        raise ValueError(f"model mixes compute dtypes {sorted(dtypes)}; refusing to seal")

    artifact = ModelArtifact(
        model_name=str(model_name),
        base_width=int(base_width),
        num_classes=int(num_classes),
        dtype=dtypes.pop(),
        state=state,
        mask_state=mask.as_dict() if mask is not None else {},
        preprocessing=preprocessing if preprocessing is not None else default_preprocessing(),
        provenance=provenance,
    )
    return artifact.save(path)


def load_artifact(path: str) -> ModelArtifact:
    """Load a sealed ``repro-model/v1`` artifact (see :class:`ModelArtifact`)."""
    return ModelArtifact.load(path)


def read_artifact_meta(path: str) -> Dict[str, object]:
    """Validate ``path`` and return its :meth:`ModelArtifact.describe` dict.

    Reads only the JSON header and the bit-packed masks from the
    archive (npz members decompress lazily), never the weight arrays —
    registering many multi-megabyte artifacts with a
    :class:`~repro.serve.store.ModelStore` stays cheap.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    try:
        with np.load(path) as archive:
            if _HEADER_KEY not in archive.files:
                raise ValueError(f"{path!r} is not a {MODEL_ARTIFACT_FORMAT} artifact")
            header = _parse_header(path, archive[_HEADER_KEY])
            total = 0
            kept = 0
            for name, shape in header.get("mask_shapes", {}).items():
                member = f"{_MASK_PREFIX}{name}"
                packed = archive[member] if member in archive.files else None
                mask = _unpack_mask(path, name, shape, packed)
                total += mask.size
                kept += int(mask.sum())
    except OSError as error:
        raise ValueError(f"cannot read model artifact {path!r}: {error}") from error
    return _meta_dict(
        header["model_name"],
        header["base_width"],
        header["num_classes"],
        header["dtype"],
        1.0 - kept / total if total else 0.0,
        header.get("preprocessing", {}),
        header.get("provenance", {}),
    )
