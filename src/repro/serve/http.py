"""Stdlib-only HTTP frontend for the serving subsystem.

``python -m repro.serve --artifact model.npz`` starts a threaded HTTP
server over a :class:`~repro.serve.store.ModelStore`; with
``--shards N`` (N >= 2) the same routes are served by a supervised
:class:`~repro.serve.fleet.FleetSupervisor` shard pool instead:

* ``GET /healthz`` — liveness, draining state, aggregate queue depth,
  and which models are registered/loaded (and, under a fleet, the
  per-shard supervision snapshot);
* ``GET /models`` — full artifact metadata per registered model;
* ``GET /metrics`` — the live ``repro-metrics/v1`` snapshot (JSON by
  default; Prometheus text with ``?format=prom`` or ``Accept:
  text/plain``); under a fleet the supervisor merges every shard's
  snapshot, so the schema is identical to in-process serving;
* ``POST /predict`` — JSON ``{"inputs": [[...]], "model": "name"?}`` ->
  ``{"logits": [[...]], "dtype": ..., "shape": [...]}``;
* ``POST /models/{name}/load`` / ``POST /models/{name}/evict`` — warm
  or drop ``name``'s engine (every shard, under a fleet) without a
  restart;
* ``POST /models/{name}/ratelimit`` — install/clear a per-model
  admission rate limit (``{"rate_per_s": 50, "burst": 10}``; ``null``
  clears); a depleted bucket answers ``429`` + ``Retry-After``;
* ``POST /drain`` — begin the graceful drain an operator otherwise
  triggers with SIGTERM.

Handler threads only parse/serialise JSON and block on the engine's
micro-batcher (or the fleet's routing table), so concurrent requests
coalesce into shared forward passes exactly like in-process traffic.
Responses carry the artifact's compute dtype and the logits' shape,
which lets a client reconstruct the numpy result byte-identically
(including zero-row responses).

Overload is a first-class response, not an accident: a saturated pool
(or a full micro-batcher queue) answers ``503`` with a ``Retry-After``
header, which :class:`~repro.serve.client.HTTPClient` honours in its
retry loop.  SIGTERM/SIGINT drain instead of dropping connections:
the listener stops accepting, every in-flight request still gets its
response, then the backend shuts down and the process exits.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import re
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Sequence, Tuple
from urllib.parse import unquote, urlsplit

from repro.obs.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.registry import default_registry, merge_snapshots
from repro.serve.admin import RateLimit, RateLimiter
from repro.serve.batching import QueueFullError
from repro.serve.engine import EngineConfig
from repro.serve.fleet.supervisor import (
    FleetConfig,
    FleetError,
    FleetSaturatedError,
    FleetSupervisor,
    FleetUnavailableError,
    WorkerError,
)
from repro.serve.store import ModelStore

__all__ = ["ServingHTTPServer", "build_parser", "create_server", "main"]

#: How long a drain waits for in-flight requests before giving up.
DRAIN_TIMEOUT_S = 30.0

#: ``Retry-After`` hint attached to single-process saturation (the
#: fleet carries its own per-config hint).
RETRY_AFTER_S = 1.0

_REGISTRY = default_registry()
_M_HTTP_REQUESTS = _REGISTRY.counter(
    "serve_http_requests_total",
    "HTTP responses sent by the frontend, by route and status.",
    labels=("route", "status"),
)
_M_RATE_LIMITED = _REGISTRY.counter(
    "serve_http_rate_limited_total",
    "Requests rejected at admission by a per-model rate limit.",
    labels=("model",),
)

#: Admin routes: ``POST /models/{name}/load|evict|ratelimit``.
_ADMIN_ROUTE = re.compile(r"^/models/([^/]+)/(load|evict|ratelimit)$")


def _retry_after_header(seconds: float) -> str:
    """RFC 9110 delta-seconds: an integer, never below 1."""
    return str(max(1, math.ceil(seconds)))


class ServingHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to a model store or a shard fleet.

    Exactly one backend is active: ``fleet`` when supplied (the store
    is then only consulted for registration metadata and may be
    ``None``), the in-process ``store`` otherwise.  The server counts
    in-flight connections so :meth:`drain` can stop accepting and wait
    for every accepted request to finish — the graceful half of
    SIGTERM handling.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        store: Optional[ModelStore],
        default_model: str,
        fleet: Optional[FleetSupervisor] = None,
        rate_limiter: Optional[RateLimiter] = None,
    ) -> None:
        if store is None and fleet is None:
            raise ValueError("a serving server needs a store or a fleet backend")
        super().__init__(address, _Handler)
        self.store = store
        self.fleet = fleet
        self.default_model = default_model
        self.rate_limiter = rate_limiter if rate_limiter is not None else RateLimiter()
        #: Called once when an admin ``POST /drain`` lands; ``main``
        #: points it at its stop event so the full drain flow runs.
        self.on_drain: Optional[callable] = None
        self._drain_requested = threading.Event()
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        self._draining = threading.Event()

    # ------------------------------------------------------------------
    # In-flight accounting / graceful drain
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def finish_request(self, request, client_address) -> None:
        with self._inflight_cv:
            self._inflight += 1
        try:
            super().finish_request(request, client_address)
        finally:
            with self._inflight_cv:
                self._inflight -= 1
                self._inflight_cv.notify_all()

    def drain(self, timeout: float = DRAIN_TIMEOUT_S) -> bool:
        """Stop accepting and wait for in-flight requests to complete.

        Returns ``True`` when every accepted request finished (its
        response flushed) within ``timeout``.  The backend is *not*
        closed here — the caller closes it after the drain so late
        responses still have an engine to come from.
        """
        self._draining.set()
        # Stops ``serve_forever`` (must run on a different thread), so
        # no new connection is accepted while we wait.
        self.shutdown()
        deadline = time.monotonic() + timeout
        with self._inflight_cv:
            while self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cv.wait(remaining)
        return True

    def request_drain(self) -> None:
        """Begin a graceful drain from an admin request (asynchronous).

        Marks the server draining immediately — ``/healthz`` reports it
        and every response starts closing its connection — then hands
        off to ``on_drain`` (the CLI's stop event) when registered, or
        runs :meth:`drain` on a background thread otherwise.  The
        handler thread that received ``POST /drain`` must not run the
        drain itself: the drain waits for in-flight requests, which
        would include that very handler.
        """
        if self._drain_requested.is_set():
            return
        self._drain_requested.set()
        self._draining.set()
        if self.on_drain is not None:
            self.on_drain()
        else:
            threading.Thread(target=self.drain, name="repro-serve-drain", daemon=True).start()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, object]:
        """The live ``repro-metrics/v1`` snapshot for ``GET /metrics``.

        In-process serving reads the process-default registry (batcher,
        engines, store, HTTP counters); a fleet merges the supervisor's
        registry and every shard's snapshot on top of the frontend's
        own HTTP counters.  Both shapes are identical — one schema, no
        matter the backend.
        """
        local = default_registry().snapshot()
        if self.fleet is not None:
            return merge_snapshots(local, self.fleet.metrics_snapshot())
        return local

    def queue_depth(self) -> int:
        """Requests queued/in-flight across the active backend."""
        if self.fleet is not None:
            return self.fleet.queue_depth()
        return self.store.queue_depth()


class _Handler(BaseHTTPRequestHandler):
    server: ServingHTTPServer

    # Keep-alive responses require accurate Content-Length, which
    # ``_send_json`` always sets.
    protocol_version = "HTTP/1.1"

    #: Normalised route label for the HTTP request counter (set by the
    #: route dispatchers; admin routes collapse the model name).
    _route = "other"

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if os.environ.get("REPRO_SERVE_LOG"):
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = urlsplit(self.path).path
        self._route = path if path in ("/healthz", "/models", "/metrics") else "other"
        if path == "/healthz":
            draining = self.server.draining
            status = "draining" if draining else "ok"
            if self.server.fleet is not None:
                fleet = self.server.fleet
                shards = fleet.shard_states()
                live = sum(1 for shard in shards if shard["state"] == "live")
                self._send_json(
                    200,
                    {
                        "status": status if live else "degraded",
                        "draining": draining,
                        "queue_depth": self.server.queue_depth(),
                        "default_model": fleet.default_model,
                        "models": fleet.names(),
                        # Every shard warm-loads every artifact before
                        # joining the pool, so registered == loaded.
                        "loaded": fleet.names(),
                        "shards": shards,
                    },
                )
            else:
                self._send_json(
                    200,
                    {
                        "status": status,
                        "draining": draining,
                        "queue_depth": self.server.queue_depth(),
                        "default_model": self.server.default_model,
                        "models": self.server.store.names(),
                        "loaded": self.server.store.loaded(),
                    },
                )
        elif path == "/models":
            backend = self.server.fleet if self.server.fleet is not None else self.server.store
            self._send_json(200, {"models": backend.describe()})
        elif path == "/metrics":
            self._send_metrics()
        else:
            self._send_json(404, {"error": f"unknown path {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        # Drain the body before routing: leaving unread bytes on a
        # keep-alive connection would desynchronise the next request.
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length)
        except (ValueError, OSError):
            self._route = "other"
            self._send_json(400, {"error": "unreadable request body"})
            return
        path = urlsplit(self.path).path
        admin = _ADMIN_ROUTE.match(path)
        if admin is not None:
            name, action = unquote(admin.group(1)), admin.group(2)
            self._route = f"/models/{{name}}/{action}"
            self._handle_admin(name, action, body)
            return
        if path == "/drain":
            self._route = "/drain"
            # Respond before the drain starts waiting on in-flight
            # requests (this handler is one of them).
            self._send_json(202, {"status": "draining"})
            self.server.request_drain()
            return
        if path != "/predict":
            self._route = "other"
            self._send_json(404, {"error": f"unknown path {path!r}"})
            return
        self._route = "/predict"
        if self.server.draining:
            # Drain semantics: finish what was admitted, admit nothing
            # new.  Retryable so a balancer/client fails over cleanly.
            self._send_json(
                503,
                {"error": "server is draining", "retryable": True},
                headers={"Retry-After": "1"},
            )
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {"error": "request body must be a JSON object"})
            return
        if not isinstance(payload, dict) or "inputs" not in payload:
            self._send_json(400, {"error": 'request must carry an "inputs" field'})
            return
        name = payload.get("model") or self.server.default_model
        admitted, retry_after = self.server.rate_limiter.admit(name)
        if not admitted:
            _M_RATE_LIMITED.labelled(model=name).inc()
            self._send_json(
                429,
                {"error": f"rate limit exceeded for model {name!r}", "retryable": True},
                headers={"Retry-After": _retry_after_header(retry_after)},
            )
            return
        if self.server.fleet is not None:
            self._predict_fleet(name, payload["inputs"])
        else:
            self._predict_store(name, payload["inputs"])

    # ------------------------------------------------------------------
    # Admin surface
    # ------------------------------------------------------------------
    def _handle_admin(self, name: str, action: str, body: bytes) -> None:
        """``POST /models/{name}/load|evict|ratelimit``.

        Load and evict work identically against both backends: the
        store warms/drops its engine, the fleet broadcasts to every
        live shard and reports per-shard acknowledgements.
        """
        if action == "ratelimit":
            self._handle_ratelimit(name, body)
            return
        fleet, store = self.server.fleet, self.server.store
        try:
            if fleet is not None:
                if action == "load":
                    result = fleet.admin_load(name)
                else:
                    result = fleet.admin_evict(name)
                status = 200 if result.get("ok") else 503
                self._send_json(status, {"action": action, **result})
            else:
                if action == "load":
                    store.get(name)
                    self._send_json(200, {"action": action, "model": name, "ok": True})
                else:
                    evicted = store.evict(name)
                    self._send_json(
                        200, {"action": action, "model": name, "ok": True, "was_loaded": evicted}
                    )
        except KeyError as error:
            self._send_json(404, {"error": str(error.args[0]) if error.args else str(error)})
        except FleetError as error:
            self._send_json(503, {"error": str(error)})
        except (OSError, ValueError, RuntimeError) as error:
            self._send_json(503, {"error": f"model {name!r} failed to load: {error}"})

    def _handle_ratelimit(self, name: str, body: bytes) -> None:
        known = (
            self.server.fleet.names() if self.server.fleet is not None
            else self.server.store.names()
        )
        if name not in known:
            self._send_json(404, {"error": f"no model named {name!r} is registered"})
            return
        try:
            payload = json.loads(body.decode("utf-8")) if body.strip() else None
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {"error": "request body must be a JSON object or null"})
            return
        try:
            if payload is None:
                applied = self.server.rate_limiter.set_limit(name, None)
            elif isinstance(payload, dict) and "rate_per_s" in payload:
                applied = self.server.rate_limiter.set_limit(
                    name, payload["rate_per_s"], payload.get("burst")
                )
            else:
                self._send_json(
                    400, {"error": 'body must be null or carry "rate_per_s" (null clears)'}
                )
                return
        except (TypeError, ValueError) as error:
            self._send_json(400, {"error": str(error)})
            return
        self._send_json(200, {"model": name, "limit": applied})

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    def _predict_fleet(self, name: str, inputs) -> None:
        """Route one prediction through the shard pool.

        The supervisor's failure taxonomy maps onto HTTP statuses:
        saturation is ``503`` + ``Retry-After`` (retryable), a fleet
        with every breaker open is ``503`` without the hint (operator
        attention), a request deadline is ``504``, and per-request
        shard errors keep their code (``400``/``404``/``500``).
        """
        fleet = self.server.fleet
        try:
            logits = fleet.predict(inputs, model=name)
        except KeyError as error:
            self._send_json(404, {"error": str(error.args[0]) if error.args else str(error)})
        except FleetSaturatedError as error:
            self._send_json(
                503,
                {"error": str(error), "retryable": True},
                headers={"Retry-After": _retry_after_header(error.retry_after)},
            )
        except FleetUnavailableError as error:
            self._send_json(503, {"error": str(error), "retryable": False})
        except TimeoutError as error:
            self._send_json(504, {"error": str(error)})
        except WorkerError as error:
            status = {"unknown-model": 404, "bad-request": 400, "saturated": 503}.get(
                error.code, 500
            )
            headers = (
                {"Retry-After": _retry_after_header(RETRY_AFTER_S)} if status == 503 else None
            )
            self._send_json(
                status, {"error": str(error), "retryable": error.retryable}, headers=headers
            )
        except FleetError as error:
            self._send_json(503, {"error": str(error)})
        except (ValueError, TypeError) as error:
            self._send_json(400, {"error": str(error)})
        else:
            self._send_logits(name, logits)

    def _predict_store(self, name: str, inputs) -> None:
        logits = None
        for attempt in (0, 1):
            try:
                engine = self.server.store.get(name)
            except KeyError as error:
                self._send_json(404, {"error": str(error)})
                return
            except (OSError, ValueError, RuntimeError) as error:
                # The registered artifact failed to load (deleted or
                # corrupted on disk since registration).
                self._send_json(503, {"error": f"model {name!r} failed to load: {error}"})
                return
            try:
                logits = engine.predict(inputs)
                break
            except (ValueError, TypeError) as error:
                self._send_json(400, {"error": str(error)})
                return
            except QueueFullError as error:
                # Bounded-queue backpressure: overload degrades to a
                # clear, retryable rejection instead of a growing queue.
                self._send_json(
                    503,
                    {"error": str(error), "retryable": True},
                    headers={"Retry-After": _retry_after_header(RETRY_AFTER_S)},
                )
                return
            except TimeoutError as error:
                self._send_json(504, {"error": str(error)})
                return
            except RuntimeError as error:
                if engine.closed:
                    # LRU-evicted between the lookup and the predict;
                    # one re-fetch reloads it.  Still churning after
                    # the retry is a capacity problem: 503.
                    if attempt == 0:
                        continue
                    self._send_json(503, {"error": str(error)})
                else:
                    # A live engine failing is a model bug, not
                    # pressure — report it, don't retry it.
                    self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
                return
            except Exception as error:  # noqa: BLE001 - report, don't drop the socket
                self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
                return
        self._send_logits(name, logits)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send_logits(self, name: str, logits) -> None:
        self._send_json(
            200,
            {
                "model": name,
                "logits": logits.tolist(),
                "dtype": str(logits.dtype),
                "shape": list(logits.shape),
            },
        )

    def _send_metrics(self) -> None:
        """``GET /metrics``: JSON by default, Prometheus text on request."""
        try:
            snapshot = self.server.metrics_snapshot()
        except FleetError as error:
            self._send_json(503, {"error": str(error)})
            return
        query = urlsplit(self.path).query
        accept = self.headers.get("Accept", "")
        as_prometheus = "format=prom" in query or (
            "text/plain" in accept and "application/json" not in accept
        )
        if as_prometheus:
            self._send_body(200, render_prometheus(snapshot).encode("utf-8"), PROMETHEUS_CONTENT_TYPE)
        else:
            self._send_json(200, snapshot)

    def _send_json(
        self, status: int, payload: dict, headers: Optional[Dict[str, str]] = None
    ) -> None:
        self._send_body(
            status, json.dumps(payload).encode("utf-8"), "application/json", headers=headers
        )

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        _M_HTTP_REQUESTS.labelled(route=self._route, status=str(status)).inc()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        if self.server.draining:
            # A draining server finishes the requests it accepted but
            # ends every connection after its current response.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)


def create_server(
    store: Optional[ModelStore],
    default_model: str,
    host: str = "127.0.0.1",
    port: int = 0,
    fleet: Optional[FleetSupervisor] = None,
    rate_limiter: Optional[RateLimiter] = None,
) -> ServingHTTPServer:
    """Bind (but do not start) a serving server; ``port=0`` picks a free one."""
    return ServingHTTPServer(
        (host, port), store, default_model, fleet=fleet, rate_limiter=rate_limiter
    )


def _artifact_name(spec: str) -> Tuple[str, str]:
    """Parse an ``--artifact`` value: ``NAME=PATH`` or bare ``PATH``."""
    if "=" in spec:
        name, _, path = spec.partition("=")
        if name and path:
            return name, path
    stem = os.path.basename(spec)
    for suffix in (".npz",):
        if stem.endswith(suffix):
            stem = stem[: -len(suffix)]
    return stem, spec


def _parse_rate_limits(specs, parser: argparse.ArgumentParser) -> RateLimiter:
    """Build the admission limiter from ``--rate-limit`` values."""
    default: Optional[RateLimit] = None
    limiter = RateLimiter()
    named = {}
    for spec in specs:
        name, sep, rest = spec.rpartition("=")
        rate_part, _, burst_part = rest.partition(":")
        try:
            rate = float(rate_part)
            burst = int(burst_part) if burst_part else None
            limit = RateLimit(rate, burst)
        except ValueError as error:
            parser.error(f"bad --rate-limit {spec!r}: {error}")
        if sep:
            named[name] = limit
        else:
            default = limit
    limiter = RateLimiter(default=default)
    for name, limit in named.items():
        limiter.set_limit(name, limit.rate_per_s, limit.burst)
    return limiter


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve sealed repro-model/v1 artifacts over HTTP.",
    )
    parser.add_argument(
        "--artifact",
        action="append",
        required=True,
        metavar="[NAME=]PATH",
        help=(
            "sealed model artifact to serve; repeat to register several "
            "(the first one is the default model for /predict)"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8100, help="bind port (default: 8100)")
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes behind the frontend; 1 (default) serves "
            "in-process, >= 2 runs a supervised shard pool with "
            "zero-loss failover (chaos hooks via REPRO_CHAOS)"
        ),
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=4,
        metavar="N",
        help="resident engines before LRU eviction kicks in (default: 4; in-process only)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        metavar="N",
        help="rows one micro-batch may coalesce (default: 64)",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="wait budget of a lone request before its batch runs (default: 2.0)",
    )
    parser.add_argument(
        "--eval-batch-size",
        type=int,
        default=64,
        metavar="N",
        help="forward-pass chunk size, mirroring predict_logits (default: 64)",
    )
    parser.add_argument(
        "--rate-limit",
        action="append",
        default=[],
        metavar="[NAME=]RPS[:BURST]",
        help=(
            "per-model admission rate limit in requests/second (repeatable); "
            "a bare RPS applies to every model without its own limit; "
            "an optional :BURST caps the bucket (default: ceil(RPS)). "
            "Mutable at runtime via POST /models/{name}/ratelimit"
        ),
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=0,
        metavar="N",
        help=(
            "requests that may queue ahead of each scheduler before new "
            "ones are rejected with 503 + Retry-After (default: 0 = unbounded)"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Start the serving frontend; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    config = EngineConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        eval_batch_size=args.eval_batch_size,
        max_queue=args.max_queue,
    )

    artifacts: Dict[str, str] = {}
    for spec in args.artifact:
        name, path = _artifact_name(spec)
        if name in artifacts:
            parser.error(
                f"two --artifact values resolve to the model name {name!r}; "
                "disambiguate with NAME=PATH"
            )
        artifacts[name] = path
    default_model = next(iter(artifacts))

    store: Optional[ModelStore] = None
    fleet: Optional[FleetSupervisor] = None
    if args.shards >= 2:
        try:
            fleet = FleetSupervisor(
                artifacts,
                FleetConfig(shards=args.shards, engine=config),
                default_model=default_model,
            )
        except (OSError, ValueError, RuntimeError) as error:
            parser.error(str(error))
    else:
        store = ModelStore(capacity=args.capacity, config=config)
        for name, path in artifacts.items():
            try:
                store.register(name, path)
            except (OSError, ValueError) as error:
                parser.error(str(error))
        # Load the default model eagerly: once /healthz answers,
        # /predict will not pay a cold model load.
        store.get(default_model)

    def close_backend() -> None:
        if fleet is not None:
            fleet.close()
        if store is not None:
            store.close()

    try:
        server = create_server(
            store,
            default_model,
            host=args.host,
            port=args.port,
            fleet=fleet,
            rate_limiter=_parse_rate_limits(args.rate_limit, parser),
        )
    except OSError as error:
        close_backend()
        parser.error(str(error))
    host, port = server.server_address[:2]
    backend = f"{args.shards} shard processes" if fleet is not None else "in-process engine"
    print(
        f"serving {list(artifacts)} on http://{host}:{port} via {backend} "
        "(POST /predict, GET /healthz, GET /models, GET /metrics, "
        "POST /models/{name}/load|evict|ratelimit, POST /drain)",
        flush=True,
    )

    # SIGTERM/SIGINT request a drain: stop accepting, answer what was
    # accepted, then shut the backend down and exit 0.
    stop = threading.Event()

    def _request_stop(signum, frame):  # noqa: ARG001 - stdlib signature
        stop.set()

    try:
        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)
    except ValueError:
        pass  # embedded in a non-main thread: the caller owns signals
    # An admin ``POST /drain`` runs the same flow as SIGTERM.
    server.on_drain = stop.set

    serve_thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    serve_thread.start()
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    print("draining in-flight requests ...", flush=True)
    drained = server.drain()
    server.server_close()
    close_backend()
    serve_thread.join(timeout=5.0)
    if not drained:
        print(f"drain timed out after {DRAIN_TIMEOUT_S}s; exiting anyway", file=sys.stderr)
        return 1
    print("drained; bye", flush=True)
    return 0
