"""Stdlib-only HTTP frontend for the serving subsystem.

``python -m repro.serve --artifact model.npz`` starts a threaded HTTP
server over a :class:`~repro.serve.store.ModelStore`; with
``--shards N`` (N >= 2) the same routes are served by a supervised
:class:`~repro.serve.fleet.FleetSupervisor` shard pool instead:

* ``GET /healthz`` — liveness plus which models are registered/loaded
  (and, under a fleet, the per-shard supervision snapshot);
* ``GET /models`` — full artifact metadata per registered model;
* ``POST /predict`` — JSON ``{"inputs": [[...]], "model": "name"?}`` ->
  ``{"logits": [[...]], "dtype": ..., "shape": [...]}``.

Handler threads only parse/serialise JSON and block on the engine's
micro-batcher (or the fleet's routing table), so concurrent requests
coalesce into shared forward passes exactly like in-process traffic.
Responses carry the artifact's compute dtype and the logits' shape,
which lets a client reconstruct the numpy result byte-identically
(including zero-row responses).

Overload is a first-class response, not an accident: a saturated pool
(or a full micro-batcher queue) answers ``503`` with a ``Retry-After``
header, which :class:`~repro.serve.client.HTTPClient` honours in its
retry loop.  SIGTERM/SIGINT drain instead of dropping connections:
the listener stops accepting, every in-flight request still gets its
response, then the backend shuts down and the process exits.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Sequence, Tuple

from repro.serve.batching import QueueFullError
from repro.serve.engine import EngineConfig
from repro.serve.fleet.supervisor import (
    FleetConfig,
    FleetError,
    FleetSaturatedError,
    FleetSupervisor,
    FleetUnavailableError,
    WorkerError,
)
from repro.serve.store import ModelStore

__all__ = ["ServingHTTPServer", "build_parser", "create_server", "main"]

#: How long a drain waits for in-flight requests before giving up.
DRAIN_TIMEOUT_S = 30.0

#: ``Retry-After`` hint attached to single-process saturation (the
#: fleet carries its own per-config hint).
RETRY_AFTER_S = 1.0


def _retry_after_header(seconds: float) -> str:
    """RFC 9110 delta-seconds: an integer, never below 1."""
    return str(max(1, math.ceil(seconds)))


class ServingHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to a model store or a shard fleet.

    Exactly one backend is active: ``fleet`` when supplied (the store
    is then only consulted for registration metadata and may be
    ``None``), the in-process ``store`` otherwise.  The server counts
    in-flight connections so :meth:`drain` can stop accepting and wait
    for every accepted request to finish — the graceful half of
    SIGTERM handling.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        store: Optional[ModelStore],
        default_model: str,
        fleet: Optional[FleetSupervisor] = None,
    ) -> None:
        if store is None and fleet is None:
            raise ValueError("a serving server needs a store or a fleet backend")
        super().__init__(address, _Handler)
        self.store = store
        self.fleet = fleet
        self.default_model = default_model
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        self._draining = threading.Event()

    # ------------------------------------------------------------------
    # In-flight accounting / graceful drain
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def finish_request(self, request, client_address) -> None:
        with self._inflight_cv:
            self._inflight += 1
        try:
            super().finish_request(request, client_address)
        finally:
            with self._inflight_cv:
                self._inflight -= 1
                self._inflight_cv.notify_all()

    def drain(self, timeout: float = DRAIN_TIMEOUT_S) -> bool:
        """Stop accepting and wait for in-flight requests to complete.

        Returns ``True`` when every accepted request finished (its
        response flushed) within ``timeout``.  The backend is *not*
        closed here — the caller closes it after the drain so late
        responses still have an engine to come from.
        """
        self._draining.set()
        # Stops ``serve_forever`` (must run on a different thread), so
        # no new connection is accepted while we wait.
        self.shutdown()
        deadline = time.monotonic() + timeout
        with self._inflight_cv:
            while self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cv.wait(remaining)
        return True


class _Handler(BaseHTTPRequestHandler):
    server: ServingHTTPServer

    # Keep-alive responses require accurate Content-Length, which
    # ``_send_json`` always sets.
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if os.environ.get("REPRO_SERVE_LOG"):
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            if self.server.fleet is not None:
                fleet = self.server.fleet
                shards = fleet.shard_states()
                live = sum(1 for shard in shards if shard["state"] == "live")
                self._send_json(
                    200,
                    {
                        "status": "ok" if live else "degraded",
                        "default_model": fleet.default_model,
                        "models": fleet.names(),
                        # Every shard warm-loads every artifact before
                        # joining the pool, so registered == loaded.
                        "loaded": fleet.names(),
                        "shards": shards,
                    },
                )
            else:
                self._send_json(
                    200,
                    {
                        "status": "ok",
                        "default_model": self.server.default_model,
                        "models": self.server.store.names(),
                        "loaded": self.server.store.loaded(),
                    },
                )
        elif self.path == "/models":
            backend = self.server.fleet if self.server.fleet is not None else self.server.store
            self._send_json(200, {"models": backend.describe()})
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        # Drain the body before routing: leaving unread bytes on a
        # keep-alive connection would desynchronise the next request.
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length)
        except (ValueError, OSError):
            self._send_json(400, {"error": "unreadable request body"})
            return
        if self.path != "/predict":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {"error": "request body must be a JSON object"})
            return
        if not isinstance(payload, dict) or "inputs" not in payload:
            self._send_json(400, {"error": 'request must carry an "inputs" field'})
            return
        name = payload.get("model") or self.server.default_model
        if self.server.fleet is not None:
            self._predict_fleet(name, payload["inputs"])
        else:
            self._predict_store(name, payload["inputs"])

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    def _predict_fleet(self, name: str, inputs) -> None:
        """Route one prediction through the shard pool.

        The supervisor's failure taxonomy maps onto HTTP statuses:
        saturation is ``503`` + ``Retry-After`` (retryable), a fleet
        with every breaker open is ``503`` without the hint (operator
        attention), a request deadline is ``504``, and per-request
        shard errors keep their code (``400``/``404``/``500``).
        """
        fleet = self.server.fleet
        try:
            logits = fleet.predict(inputs, model=name)
        except KeyError as error:
            self._send_json(404, {"error": str(error.args[0]) if error.args else str(error)})
        except FleetSaturatedError as error:
            self._send_json(
                503,
                {"error": str(error), "retryable": True},
                headers={"Retry-After": _retry_after_header(error.retry_after)},
            )
        except FleetUnavailableError as error:
            self._send_json(503, {"error": str(error), "retryable": False})
        except TimeoutError as error:
            self._send_json(504, {"error": str(error)})
        except WorkerError as error:
            status = {"unknown-model": 404, "bad-request": 400, "saturated": 503}.get(
                error.code, 500
            )
            headers = (
                {"Retry-After": _retry_after_header(RETRY_AFTER_S)} if status == 503 else None
            )
            self._send_json(
                status, {"error": str(error), "retryable": error.retryable}, headers=headers
            )
        except FleetError as error:
            self._send_json(503, {"error": str(error)})
        except (ValueError, TypeError) as error:
            self._send_json(400, {"error": str(error)})
        else:
            self._send_logits(name, logits)

    def _predict_store(self, name: str, inputs) -> None:
        logits = None
        for attempt in (0, 1):
            try:
                engine = self.server.store.get(name)
            except KeyError as error:
                self._send_json(404, {"error": str(error)})
                return
            except (OSError, ValueError, RuntimeError) as error:
                # The registered artifact failed to load (deleted or
                # corrupted on disk since registration).
                self._send_json(503, {"error": f"model {name!r} failed to load: {error}"})
                return
            try:
                logits = engine.predict(inputs)
                break
            except (ValueError, TypeError) as error:
                self._send_json(400, {"error": str(error)})
                return
            except QueueFullError as error:
                # Bounded-queue backpressure: overload degrades to a
                # clear, retryable rejection instead of a growing queue.
                self._send_json(
                    503,
                    {"error": str(error), "retryable": True},
                    headers={"Retry-After": _retry_after_header(RETRY_AFTER_S)},
                )
                return
            except TimeoutError as error:
                self._send_json(504, {"error": str(error)})
                return
            except RuntimeError as error:
                if engine.closed:
                    # LRU-evicted between the lookup and the predict;
                    # one re-fetch reloads it.  Still churning after
                    # the retry is a capacity problem: 503.
                    if attempt == 0:
                        continue
                    self._send_json(503, {"error": str(error)})
                else:
                    # A live engine failing is a model bug, not
                    # pressure — report it, don't retry it.
                    self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
                return
            except Exception as error:  # noqa: BLE001 - report, don't drop the socket
                self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
                return
        self._send_logits(name, logits)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send_logits(self, name: str, logits) -> None:
        self._send_json(
            200,
            {
                "model": name,
                "logits": logits.tolist(),
                "dtype": str(logits.dtype),
                "shape": list(logits.shape),
            },
        )

    def _send_json(
        self, status: int, payload: dict, headers: Optional[Dict[str, str]] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        if self.server.draining:
            # A draining server finishes the requests it accepted but
            # ends every connection after its current response.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)


def create_server(
    store: Optional[ModelStore],
    default_model: str,
    host: str = "127.0.0.1",
    port: int = 0,
    fleet: Optional[FleetSupervisor] = None,
) -> ServingHTTPServer:
    """Bind (but do not start) a serving server; ``port=0`` picks a free one."""
    return ServingHTTPServer((host, port), store, default_model, fleet=fleet)


def _artifact_name(spec: str) -> Tuple[str, str]:
    """Parse an ``--artifact`` value: ``NAME=PATH`` or bare ``PATH``."""
    if "=" in spec:
        name, _, path = spec.partition("=")
        if name and path:
            return name, path
    stem = os.path.basename(spec)
    for suffix in (".npz",):
        if stem.endswith(suffix):
            stem = stem[: -len(suffix)]
    return stem, spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve sealed repro-model/v1 artifacts over HTTP.",
    )
    parser.add_argument(
        "--artifact",
        action="append",
        required=True,
        metavar="[NAME=]PATH",
        help=(
            "sealed model artifact to serve; repeat to register several "
            "(the first one is the default model for /predict)"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8100, help="bind port (default: 8100)")
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes behind the frontend; 1 (default) serves "
            "in-process, >= 2 runs a supervised shard pool with "
            "zero-loss failover (chaos hooks via REPRO_CHAOS)"
        ),
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=4,
        metavar="N",
        help="resident engines before LRU eviction kicks in (default: 4; in-process only)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        metavar="N",
        help="rows one micro-batch may coalesce (default: 64)",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="wait budget of a lone request before its batch runs (default: 2.0)",
    )
    parser.add_argument(
        "--eval-batch-size",
        type=int,
        default=64,
        metavar="N",
        help="forward-pass chunk size, mirroring predict_logits (default: 64)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=0,
        metavar="N",
        help=(
            "requests that may queue ahead of each scheduler before new "
            "ones are rejected with 503 + Retry-After (default: 0 = unbounded)"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Start the serving frontend; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    config = EngineConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        eval_batch_size=args.eval_batch_size,
        max_queue=args.max_queue,
    )

    artifacts: Dict[str, str] = {}
    for spec in args.artifact:
        name, path = _artifact_name(spec)
        if name in artifacts:
            parser.error(
                f"two --artifact values resolve to the model name {name!r}; "
                "disambiguate with NAME=PATH"
            )
        artifacts[name] = path
    default_model = next(iter(artifacts))

    store: Optional[ModelStore] = None
    fleet: Optional[FleetSupervisor] = None
    if args.shards >= 2:
        try:
            fleet = FleetSupervisor(
                artifacts,
                FleetConfig(shards=args.shards, engine=config),
                default_model=default_model,
            )
        except (OSError, ValueError, RuntimeError) as error:
            parser.error(str(error))
    else:
        store = ModelStore(capacity=args.capacity, config=config)
        for name, path in artifacts.items():
            try:
                store.register(name, path)
            except (OSError, ValueError) as error:
                parser.error(str(error))
        # Load the default model eagerly: once /healthz answers,
        # /predict will not pay a cold model load.
        store.get(default_model)

    def close_backend() -> None:
        if fleet is not None:
            fleet.close()
        if store is not None:
            store.close()

    try:
        server = create_server(store, default_model, host=args.host, port=args.port, fleet=fleet)
    except OSError as error:
        close_backend()
        parser.error(str(error))
    host, port = server.server_address[:2]
    backend = f"{args.shards} shard processes" if fleet is not None else "in-process engine"
    print(
        f"serving {list(artifacts)} on http://{host}:{port} via {backend} "
        "(POST /predict, GET /healthz, GET /models)",
        flush=True,
    )

    # SIGTERM/SIGINT request a drain: stop accepting, answer what was
    # accepted, then shut the backend down and exit 0.
    stop = threading.Event()

    def _request_stop(signum, frame):  # noqa: ARG001 - stdlib signature
        stop.set()

    try:
        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)
    except ValueError:
        pass  # embedded in a non-main thread: the caller owns signals

    serve_thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    serve_thread.start()
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    print("draining in-flight requests ...", flush=True)
    drained = server.drain()
    server.server_close()
    close_backend()
    serve_thread.join(timeout=5.0)
    if not drained:
        print(f"drain timed out after {DRAIN_TIMEOUT_S}s; exiting anyway", file=sys.stderr)
        return 1
    print("drained; bye", flush=True)
    return 0
