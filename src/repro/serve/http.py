"""Stdlib-only HTTP frontend for the serving subsystem.

``python -m repro.serve --artifact model.npz`` starts a threaded HTTP
server over a :class:`~repro.serve.store.ModelStore`:

* ``GET /healthz`` — liveness plus which models are registered/loaded;
* ``GET /models`` — full artifact metadata per registered model;
* ``POST /predict`` — JSON ``{"inputs": [[...]], "model": "name"?}`` ->
  ``{"logits": [[...]], "dtype": ..., "shape": [...]}``.

Handler threads only parse/serialise JSON and block on the engine's
micro-batcher, so concurrent requests coalesce into shared forward
passes exactly like in-process traffic.  Responses carry the artifact's
compute dtype and the logits' shape, which lets a client reconstruct
the numpy result byte-identically (including zero-row responses).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Sequence, Tuple

from repro.serve.engine import EngineConfig
from repro.serve.store import ModelStore

__all__ = ["ServingHTTPServer", "build_parser", "create_server", "main"]


class ServingHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to a model store."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], store: ModelStore, default_model: str) -> None:
        super().__init__(address, _Handler)
        self.store = store
        self.default_model = default_model


class _Handler(BaseHTTPRequestHandler):
    server: ServingHTTPServer

    # Keep-alive responses require accurate Content-Length, which
    # ``_send_json`` always sets.
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if os.environ.get("REPRO_SERVE_LOG"):
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "default_model": self.server.default_model,
                    "models": self.server.store.names(),
                    "loaded": self.server.store.loaded(),
                },
            )
        elif self.path == "/models":
            self._send_json(200, {"models": self.server.store.describe()})
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        # Drain the body before routing: leaving unread bytes on a
        # keep-alive connection would desynchronise the next request.
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length)
        except (ValueError, OSError):
            self._send_json(400, {"error": "unreadable request body"})
            return
        if self.path != "/predict":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {"error": "request body must be a JSON object"})
            return
        if not isinstance(payload, dict) or "inputs" not in payload:
            self._send_json(400, {"error": 'request must carry an "inputs" field'})
            return
        name = payload.get("model") or self.server.default_model
        logits = None
        for attempt in (0, 1):
            try:
                engine = self.server.store.get(name)
            except KeyError as error:
                self._send_json(404, {"error": str(error)})
                return
            except (OSError, ValueError, RuntimeError) as error:
                # The registered artifact failed to load (deleted or
                # corrupted on disk since registration).
                self._send_json(503, {"error": f"model {name!r} failed to load: {error}"})
                return
            try:
                logits = engine.predict(payload["inputs"])
                break
            except (ValueError, TypeError) as error:
                self._send_json(400, {"error": str(error)})
                return
            except RuntimeError as error:
                if engine.closed:
                    # LRU-evicted between the lookup and the predict;
                    # one re-fetch reloads it.  Still churning after
                    # the retry is a capacity problem: 503.
                    if attempt == 0:
                        continue
                    self._send_json(503, {"error": str(error)})
                else:
                    # A live engine failing is a model bug, not
                    # pressure — report it, don't retry it.
                    self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
                return
            except Exception as error:  # noqa: BLE001 - report, don't drop the socket
                self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
                return
        self._send_json(
            200,
            {
                "model": name,
                "logits": logits.tolist(),
                "dtype": str(logits.dtype),
                "shape": list(logits.shape),
            },
        )

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def create_server(
    store: ModelStore,
    default_model: str,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ServingHTTPServer:
    """Bind (but do not start) a serving server; ``port=0`` picks a free one."""
    return ServingHTTPServer((host, port), store, default_model)


def _artifact_name(spec: str) -> Tuple[str, str]:
    """Parse an ``--artifact`` value: ``NAME=PATH`` or bare ``PATH``."""
    if "=" in spec:
        name, _, path = spec.partition("=")
        if name and path:
            return name, path
    stem = os.path.basename(spec)
    for suffix in (".npz",):
        if stem.endswith(suffix):
            stem = stem[: -len(suffix)]
    return stem, spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve sealed repro-model/v1 artifacts over HTTP.",
    )
    parser.add_argument(
        "--artifact",
        action="append",
        required=True,
        metavar="[NAME=]PATH",
        help=(
            "sealed model artifact to serve; repeat to register several "
            "(the first one is the default model for /predict)"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8100, help="bind port (default: 8100)")
    parser.add_argument(
        "--capacity",
        type=int,
        default=4,
        metavar="N",
        help="resident engines before LRU eviction kicks in (default: 4)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        metavar="N",
        help="rows one micro-batch may coalesce (default: 64)",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="wait budget of a lone request before its batch runs (default: 2.0)",
    )
    parser.add_argument(
        "--eval-batch-size",
        type=int,
        default=64,
        metavar="N",
        help="forward-pass chunk size, mirroring predict_logits (default: 64)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Start the serving frontend; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    config = EngineConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        eval_batch_size=args.eval_batch_size,
    )
    store = ModelStore(capacity=args.capacity, config=config)
    default_model = None
    for spec in args.artifact:
        name, path = _artifact_name(spec)
        if name in store.names():
            parser.error(
                f"two --artifact values resolve to the model name {name!r}; "
                "disambiguate with NAME=PATH"
            )
        try:
            store.register(name, path)
        except (OSError, ValueError) as error:
            parser.error(str(error))
        default_model = default_model or name
    assert default_model is not None
    # Load the default model eagerly: once /healthz answers, /predict
    # will not pay a cold model load.
    store.get(default_model)

    server = create_server(store, default_model, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(
        f"serving {store.names()} on http://{host}:{port} "
        "(POST /predict, GET /healthz, GET /models)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        store.close()
    return 0
