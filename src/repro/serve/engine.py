""":class:`ServingEngine`: a loaded artifact answering prediction traffic.

The engine owns one sealed :class:`~repro.serve.artifact.ModelArtifact`
and a :class:`~repro.serve.batching.MicroBatcher`.  Caller threads (the
HTTP frontend, the in-process client, benchmark load generators) call
:meth:`predict`; requests queue, coalesce into micro-batches, and run
through the fused evaluation graph on the single scheduler thread.

The forward path **is** :func:`repro.training.evaluation.predict_logits`
(called with ``fused=False`` — the sealed graph is already folded):
the coalesced batch is chunked at ``eval_batch_size`` (the same
default, 64), each chunk runs under ``no_grad``, and a zero-row batch
still produces logits with the full class dimension.  It runs inside a
**thread-local** dtype scope pinned to the artifact's compute
precision, so a single-request prediction is **byte-identical** to
``predict_logits`` on the source model in the exporting process —
serving never changes the numbers, no matter the host process's engine
default — and engines sealed under different dtypes serve concurrently
without interfering.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.obs.registry import default_registry
from repro.serve.artifact import ModelArtifact, load_artifact
from repro.serve.batching import BatchingConfig, MicroBatcher
from repro.tensor.dtypes import default_dtype_scope
from repro.tensor.sanitize import SanitizeError, sanitize_scope
from repro.training.evaluation import predict_logits

__all__ = ["EngineConfig", "ServingEngine"]

_REGISTRY = default_registry()
_M_REQUESTS = _REGISTRY.counter(
    "serve_model_requests_total",
    "Prediction requests accepted per served model.",
    labels=("model",),
)
_M_ROWS = _REGISTRY.counter(
    "serve_model_rows_total",
    "Input rows predicted per served model.",
    labels=("model",),
)
_M_FORWARD = _REGISTRY.histogram(
    "serve_forward_latency_s",
    "Wall time of one coalesced forward pass through the sealed graph.",
    labels=("model",),
)
_M_SANITIZE_FAULTS = _REGISTRY.counter(
    "serve_sanitize_faults_total",
    "Forward passes aborted by the numeric sanitizer (NaN/Inf caught).",
    labels=("model",),
)


@dataclass(frozen=True)
class EngineConfig:
    """Scheduling and forward-pass knobs of a :class:`ServingEngine`."""

    #: Rows one micro-batch may coalesce before it runs.
    max_batch: int = 64
    #: How long the first request of a window waits for company.
    max_wait_ms: float = 2.0
    #: Chunk size of the forward pass (matches ``predict_logits``).
    eval_batch_size: int = 64
    #: Requests that may queue ahead of the scheduler before new
    #: submissions are rejected with
    #: :class:`~repro.serve.batching.QueueFullError` (0: unbounded).
    #: The fleet worker and the HTTP frontend turn that rejection into
    #: a retryable ``saturated`` / ``503`` signal.
    max_queue: int = 0
    #: Run the numeric sanitizer on the scheduler thread: every serving
    #: forward raises (and the error is delivered to the waiting caller)
    #: if it produces NaN/Inf, naming the offending op and layer.  Off
    #: by default — the checks cost one ``isfinite`` reduction per op.
    sanitize: bool = False

    def batching(self) -> BatchingConfig:
        return BatchingConfig(
            max_batch=self.max_batch,
            max_wait_ms=self.max_wait_ms,
            max_queue=self.max_queue,
        )


class ServingEngine:
    """Batched inference over one sealed model artifact (thread-safe)."""

    def __init__(
        self,
        artifact: Union[ModelArtifact, str, os.PathLike],
        config: Optional[EngineConfig] = None,
        seed: int = 0,
        name: Optional[str] = None,
    ) -> None:
        if not isinstance(artifact, ModelArtifact):
            artifact = load_artifact(os.fspath(artifact))
        self.artifact = artifact
        #: The serving name this engine's metrics are labelled with —
        #: the operator-facing registration name when the store/fleet
        #: supplies one, else the artifact's own model name.
        self.name = name if name is not None else artifact.model_name
        self.config = config if config is not None else EngineConfig()
        self._dtype = np.dtype(artifact.dtype)
        self.model = artifact.build_model(seed=seed)
        self._closed = False
        # Children resolve once: recording on the hot path is a direct
        # method call on the bound instrument, not a registry lookup.
        self._m_requests = _M_REQUESTS.labelled(model=self.name)
        self._m_rows = _M_ROWS.labelled(model=self.name)
        self._m_forward = _M_FORWARD.labelled(model=self.name)
        self._m_sanitize_faults = _M_SANITIZE_FAULTS.labelled(model=self.name)
        self._batcher = MicroBatcher(self._forward, self.config.batching())

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def predict(self, inputs, timeout: Optional[float] = None) -> np.ndarray:
        """Class logits for ``inputs``; blocks until the batch runs.

        ``inputs`` is an ``(N, C, H, W)`` array-like in the artifact's
        preprocessing layout (a single ``(C, H, W)`` sample is promoted
        to a batch of one; an empty list means zero samples).  Returns
        ``(N, num_classes)`` logits in the artifact's compute dtype —
        ``N = 0`` still carries the full class dimension.  ``timeout``
        bounds the wait for the result (``TimeoutError`` on expiry);
        with ``max_queue`` configured and the scheduler saturated the
        request is rejected immediately with
        :class:`~repro.serve.batching.QueueFullError`.
        """
        if self._closed:
            raise RuntimeError("cannot predict with a closed ServingEngine")
        array = self._validate(inputs)
        self._m_requests.inc()
        self._m_rows.inc(array.shape[0])
        return self._batcher.submit(array, timeout=timeout)

    def _validate(self, inputs) -> np.ndarray:
        array = np.asarray(inputs, dtype=self._dtype)
        expected = self.artifact.input_shape()
        if array.size == 0 and array.ndim <= 1:
            # ``[]`` over the wire / an empty list in-process: zero
            # samples of the declared shape (the empty-input contract).
            array = array.reshape((0,) + expected)
        if array.ndim == 3:
            array = array[None]
        if array.ndim != 4 or array.shape[1:] != expected:
            raise ValueError(
                f"inputs must have shape (N, {expected[0]}, {expected[1]}, "
                f"{expected[2]}), got {array.shape}"
            )
        return array

    def stats(self) -> Dict[str, object]:
        """Scheduler counters plus the served artifact's identity."""
        return {
            "model_name": self.artifact.model_name,
            "num_classes": self.artifact.num_classes,
            "dtype": str(self._dtype),
            "sparsity": round(self.artifact.sparsity(), 6),
            "batching": self._batcher.stats(),
        }

    @property
    def queue_depth(self) -> int:
        """Requests queued ahead of this engine's scheduler right now."""
        return self._batcher.queue_depth

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop the scheduler thread (queued requests still complete)."""
        if not self._closed:
            self._closed = True
            self._batcher.close()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Scheduler-side forward pass
    # ------------------------------------------------------------------
    def _forward(self, batch: np.ndarray) -> np.ndarray:
        # The serving forward *is* ``predict_logits`` — same chunking,
        # same empty-input contract — so the byte-identity guarantee is
        # structural, not a hand-kept mirror.  ``fused=False`` because
        # the sealed graph is already folded.  The dtype scope is
        # thread-local and this method only ever runs on this engine's
        # scheduler thread: the whole forward stays in the sealed
        # precision without perturbing other threads, so engines sealed
        # under different dtypes serve concurrently.
        try:
            with self._m_forward.time(), default_dtype_scope(self._dtype):
                if self.config.sanitize:
                    # Opt in for this engine's forwards only.  Without the
                    # flag the ambient setting (REPRO_SANITIZE) still
                    # applies — the engine never vetoes a global sanitize.
                    with sanitize_scope():
                        return predict_logits(
                            self.model, batch, batch_size=self.config.eval_batch_size, fused=False
                        )
                return predict_logits(
                    self.model, batch, batch_size=self.config.eval_batch_size, fused=False
                )
        except SanitizeError:
            self._m_sanitize_faults.inc()
            raise
