""":class:`ModelStore`: an LRU cache of loaded serving engines.

A server rarely keeps every exported artifact resident: sealed models
are cheap on disk but each loaded engine pins a full set of fused
weights in memory.  The store maps **names** to registered artifact
paths and materialises at most ``capacity`` engines at a time; fetching
a registered-but-unloaded model loads it on the spot and evicts (and
closes) the least-recently-used engine to make room.

All operations are guarded by one lock, so the HTTP frontend's handler
threads can share a store safely; the engines themselves serialise
inference on their own scheduler threads.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from threading import Event, Lock
from typing import Dict, List, Optional

from repro.obs.registry import default_registry
from repro.serve.artifact import read_artifact_meta
from repro.serve.engine import EngineConfig, ServingEngine

__all__ = ["ModelStore"]

_REGISTRY = default_registry()
_M_LOADS = _REGISTRY.counter(
    "serve_store_loads_total", "Cold engine loads performed by the model store."
)
_M_EVICTIONS = _REGISTRY.counter(
    "serve_store_evictions_total", "Engines evicted by LRU pressure at capacity."
)
_M_ADMIN_EVICTIONS = _REGISTRY.counter(
    "serve_store_admin_evictions_total", "Engines evicted explicitly via the admin surface."
)
_M_RESIDENT = _REGISTRY.gauge(
    "serve_store_resident_engines", "Engines currently resident in the store.", unit="engines"
)


class ModelStore:
    """Name -> :class:`ServingEngine` with LRU eviction at ``capacity``."""

    def __init__(self, capacity: int = 4, config: Optional[EngineConfig] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.config = config
        self._paths: "OrderedDict[str, str]" = OrderedDict()
        self._meta: Dict[str, Dict[str, object]] = {}
        self._engines: "OrderedDict[str, ServingEngine]" = OrderedDict()
        #: Names with a load in flight: followers wait on the event
        #: instead of loading the same artifact twice.
        self._loading: Dict[str, Event] = {}
        self._lock = Lock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, path: str) -> None:
        """Register artifact ``path`` under ``name`` (validates it loads).

        Re-registering a name replaces its path and drops any engine
        loaded from the old one.
        """
        resolved = os.fspath(path)
        # Fail fast on a missing/foreign file; reads only the header and
        # packed masks, never the weight arrays.
        meta = read_artifact_meta(resolved)
        with self._lock:
            self._paths[name] = resolved
            self._meta[name] = meta
            stale = self._engines.pop(name, None)
        if stale is not None:
            stale.close()

    def names(self) -> List[str]:
        """All registered model names, in registration order."""
        with self._lock:
            return list(self._paths)

    def loaded(self) -> List[str]:
        """Names with a resident engine, least-recently-used first."""
        with self._lock:
            return list(self._engines)

    # ------------------------------------------------------------------
    # Fetching
    # ------------------------------------------------------------------
    def get(self, name: str) -> ServingEngine:
        """The engine for ``name``, loading and evicting as needed.

        Cold loads happen *outside* the store lock (a multi-megabyte
        artifact read must not stall hits on resident models or
        ``/healthz``); concurrent requests for the same cold model wait
        for the single in-flight load instead of duplicating it.
        """
        while True:
            with self._lock:
                if name in self._engines:
                    self._engines.move_to_end(name)
                    return self._engines[name]
                if name not in self._paths:
                    raise KeyError(
                        f"no model named {name!r} is registered; available: {list(self._paths)}"
                    )
                in_flight = self._loading.get(name)
                if in_flight is None:
                    self._loading[name] = Event()
                    path = self._paths[name]
                    break
            # Another thread is loading this model; wait and re-check
            # (the loader may also have failed, in which case we retry).
            in_flight.wait()

        try:
            engine = ServingEngine(path, config=self.config, name=name)
        except BaseException:
            with self._lock:
                self._loading.pop(name).set()
            raise
        evicted: List[ServingEngine] = []
        with self._lock:
            replaced = self._paths.get(name) != path
            if not replaced:
                self._engines[name] = engine
                self._engines.move_to_end(name)
                while len(self._engines) > self.capacity:
                    _, stale = self._engines.popitem(last=False)
                    evicted.append(stale)
            self._loading.pop(name).set()
            _M_RESIDENT.set(len(self._engines))
        if not replaced:
            _M_LOADS.inc()
        _M_EVICTIONS.inc(len(evicted))
        for stale in evicted:
            stale.close()
        if replaced:
            # ``register`` swapped the path mid-load; this engine holds
            # the replaced artifact and must not be served.
            engine.close()
            return self.get(name)
        return engine

    def evict(self, name: str) -> bool:
        """Drop ``name``'s resident engine (admin surface; path stays registered).

        Returns whether an engine was actually resident.  Raises
        ``KeyError`` for a name that was never registered, so the HTTP
        layer can distinguish 404 from an eviction of a cold model.
        """
        with self._lock:
            if name not in self._paths:
                raise KeyError(
                    f"no model named {name!r} is registered; available: {list(self._paths)}"
                )
            engine = self._engines.pop(name, None)
            _M_RESIDENT.set(len(self._engines))
        if engine is None:
            return False
        _M_ADMIN_EVICTIONS.inc()
        engine.close()
        return True

    def queue_depth(self) -> int:
        """Requests queued across every resident engine (for ``/healthz``)."""
        with self._lock:
            engines = list(self._engines.values())
        return sum(engine.queue_depth for engine in engines)

    def describe(self) -> List[Dict[str, object]]:
        """Metadata for every registered model (what ``/models`` serves).

        The per-artifact metadata was captured at :meth:`register` time,
        so describing the store never re-reads weight arrays from disk.
        """
        with self._lock:
            return [
                {"name": name, "path": path, "loaded": name in self._engines, **self._meta[name]}
                for name, path in self._paths.items()
            ]

    def close(self) -> None:
        """Close every resident engine and forget them (paths stay registered)."""
        with self._lock:
            engines = list(self._engines.values())
            self._engines.clear()
        for engine in engines:
            engine.close()
