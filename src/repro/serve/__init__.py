"""Model serving: sealed artifacts answering batched prediction traffic.

The deployment end of the compression pipeline:

1. **Seal** — :func:`export_artifact` packages a fused, mask-applied
   model (plus preprocessing spec and provenance) as one atomic
   ``repro-model/v1`` bundle; ``python -m repro.experiments <id>
   --export-model PATH`` does it for the best point of a finished sweep.
2. **Serve** — :class:`ServingEngine` loads an artifact and answers
   ``predict`` calls through a dynamic micro-batching scheduler;
   :class:`ModelStore` keeps an LRU set of engines resident.
3. **Speak** — ``python -m repro.serve --artifact PATH`` exposes
   ``/predict``, ``/healthz`` and ``/models`` over stdlib HTTP;
   :class:`InProcessClient` / :class:`HTTPClient` are the matching
   client halves.

Predictions are byte-identical to
:func:`repro.training.evaluation.predict_logits` on the source model:
the artifact seals the already-folded evaluation graph and the engine
replays its exact forward path under the sealed compute dtype.
"""

from repro.serve.artifact import (
    MODEL_ARTIFACT_FORMAT,
    ModelArtifact,
    default_preprocessing,
    export_artifact,
    load_artifact,
)
from repro.serve.batching import BatchingConfig, BatchStats, MicroBatcher
from repro.serve.client import HTTPClient, InProcessClient, ServingError
from repro.serve.engine import EngineConfig, ServingEngine
from repro.serve.export import best_point, export_best
from repro.serve.http import ServingHTTPServer, create_server
from repro.serve.store import ModelStore

__all__ = [
    "MODEL_ARTIFACT_FORMAT",
    "ModelArtifact",
    "default_preprocessing",
    "export_artifact",
    "load_artifact",
    "BatchingConfig",
    "BatchStats",
    "MicroBatcher",
    "HTTPClient",
    "InProcessClient",
    "ServingError",
    "EngineConfig",
    "ServingEngine",
    "best_point",
    "export_best",
    "ServingHTTPServer",
    "create_server",
    "ModelStore",
]
