"""Model serving: sealed artifacts answering batched prediction traffic.

The deployment end of the compression pipeline:

1. **Seal** — :func:`export_artifact` packages a fused, mask-applied
   model (plus preprocessing spec and provenance) as one atomic
   ``repro-model/v1`` bundle; ``python -m repro.experiments <id>
   --export-model PATH`` does it for the best point of a finished sweep.
2. **Serve** — :class:`ServingEngine` loads an artifact and answers
   ``predict`` calls through a dynamic micro-batching scheduler;
   :class:`ModelStore` keeps an LRU set of engines resident.
3. **Speak** — ``python -m repro.serve --artifact PATH`` exposes
   ``/predict``, ``/healthz`` and ``/models`` over stdlib HTTP;
   :class:`InProcessClient` / :class:`HTTPClient` are the matching
   client halves.
4. **Scale out** — ``--shards N`` swaps the in-process engine for a
   supervised multi-process shard pool (:mod:`repro.serve.fleet`):
   consistent-hash routing, heartbeat supervision, crash-loop
   breakers, zero-loss failover, and deterministic fault injection
   through :mod:`repro.serve.fleet.chaos`.

Predictions are byte-identical to
:func:`repro.training.evaluation.predict_logits` on the source model:
the artifact seals the already-folded evaluation graph and the engine
replays its exact forward path under the sealed compute dtype.
"""

from repro.serve.artifact import (
    MODEL_ARTIFACT_FORMAT,
    ModelArtifact,
    default_preprocessing,
    export_artifact,
    load_artifact,
)
from repro.serve.batching import BatchingConfig, BatchStats, MicroBatcher, QueueFullError
from repro.serve.client import HTTPClient, InProcessClient, RetryPolicy, ServingError
from repro.serve.engine import EngineConfig, ServingEngine
from repro.serve.export import best_point, export_best
from repro.serve.fleet import (
    FleetConfig,
    FleetError,
    FleetSaturatedError,
    FleetSupervisor,
    FleetUnavailableError,
    WorkerError,
)
from repro.serve.http import ServingHTTPServer, create_server
from repro.serve.store import ModelStore

__all__ = [
    "MODEL_ARTIFACT_FORMAT",
    "ModelArtifact",
    "default_preprocessing",
    "export_artifact",
    "load_artifact",
    "BatchingConfig",
    "BatchStats",
    "MicroBatcher",
    "QueueFullError",
    "HTTPClient",
    "InProcessClient",
    "RetryPolicy",
    "ServingError",
    "EngineConfig",
    "ServingEngine",
    "best_point",
    "export_best",
    "FleetConfig",
    "FleetError",
    "FleetSaturatedError",
    "FleetSupervisor",
    "FleetUnavailableError",
    "WorkerError",
    "ServingHTTPServer",
    "create_server",
    "ModelStore",
]
