"""Admission rate limiting for the serving frontend.

A :class:`RateLimiter` holds one token bucket per model (plus an
optional default applied to models without their own limit) and is
consulted by the HTTP frontend *at admission*, before a request touches
either backend — so limits behave identically for the in-process engine
and the fleet.  A depleted bucket answers ``429`` with a ``Retry-After``
hint and ``retryable: true``, which
:class:`~repro.serve.client.HTTPClient` honours in its retry loop.

Buckets refill continuously: a limit of ``rate_per_s`` admits that many
requests per second sustained, with bursts up to ``burst`` (default:
``ceil(rate_per_s)``, minimum 1).  Limits are mutable at runtime via
``POST /models/{name}/ratelimit`` — the operator can squeeze a noisy
tenant without restarting the server.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, Optional, Tuple

__all__ = ["RateLimit", "RateLimiter"]


class RateLimit:
    """One token bucket: ``rate_per_s`` sustained, ``burst`` peak."""

    __slots__ = ("rate_per_s", "burst", "_tokens", "_updated", "_lock")

    def __init__(self, rate_per_s: float, burst: Optional[int] = None) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
        self.rate_per_s = float(rate_per_s)
        self.burst = int(burst) if burst is not None else max(1, math.ceil(rate_per_s))
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self._tokens = float(self.burst)
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def allow(self) -> Tuple[bool, float]:
        """Take one token if available; else ``(False, retry_after_s)``."""
        now = time.monotonic()
        with self._lock:
            self._tokens = min(
                float(self.burst), self._tokens + (now - self._updated) * self.rate_per_s
            )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True, 0.0
            return False, (1.0 - self._tokens) / self.rate_per_s

    def describe(self) -> Dict[str, float]:
        return {"rate_per_s": self.rate_per_s, "burst": self.burst}


class RateLimiter:
    """Per-model :class:`RateLimit` table with an optional default.

    A model's own limit wins over the default; a model with neither is
    unlimited.  ``set_limit(name, None)`` clears a per-model limit (the
    default, if any, applies again).
    """

    def __init__(self, default: Optional[RateLimit] = None) -> None:
        self._default = default
        self._limits: Dict[str, RateLimit] = {}
        self._lock = threading.Lock()

    def set_limit(
        self, name: str, rate_per_s: Optional[float], burst: Optional[int] = None
    ) -> Optional[Dict[str, float]]:
        """Install (or clear, with ``rate_per_s=None``) ``name``'s limit."""
        if rate_per_s is None:
            with self._lock:
                self._limits.pop(name, None)
            return None
        limit = RateLimit(rate_per_s, burst)
        with self._lock:
            self._limits[name] = limit
        return limit.describe()

    def admit(self, name: str) -> Tuple[bool, float]:
        """Whether one request for ``name`` may pass right now."""
        with self._lock:
            limit = self._limits.get(name, self._default)
        if limit is None:
            return True, 0.0
        return limit.allow()

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "default": self._default.describe() if self._default is not None else None,
                "models": {name: limit.describe() for name, limit in self._limits.items()},
            }
